"""Asyncio client of the cardinality service.

:class:`ServeClient` is a thin, pipelining-capable wrapper over one
connection: every verb has an ``await``-able method, and
:meth:`ServeClient.estimate_many` pipelines a whole batch of ESTIMATEs
in one write (the server answers in FIFO order, so no request tags are
needed). Protocol-level failures surface as :class:`ServeError`
carrying the server's error code.

:class:`RetryingClient` layers transparent reconnection on top, driven
by the *same* :class:`~repro.engine.recovery.RetryPolicy` the
checkpoint layer uses — deterministic backoff, bounded attempts — so a
client riding through a server crash-and-restart (the kill-and-resume
test) recovers without bespoke retry code. Retried RECORDs are
**at-least-once**: if the connection dies after the server applied the
batch but before the acknowledgment arrived, the retry re-records it.
For cardinality estimation this is benign by construction — estimators
are duplicate-insensitive, so re-recording the same keys cannot inflate
the estimate — which is why the service can offer so simple a retry
contract. (The *state* may differ bit-wise from a never-crashed run;
the *answers* do not move beyond the paper's error bound.)
"""

from __future__ import annotations

import asyncio
from typing import Sequence

import numpy as np

from repro.engine.recovery import RetryPolicy
from repro.serve import protocol
from repro.serve.protocol import (
    Checkpoint,
    CheckpointOk,
    Error,
    Estimate,
    EstimateOk,
    Export,
    ExportOk,
    FrameDecoder,
    MergeIn,
    MergeInOk,
    Record,
    RecordOk,
    Request,
    Response,
    Stats,
    StatsOk,
    encode_request,
)

__all__ = ["RetryingClient", "ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The server answered with an ERROR frame."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"server error {code}: {message}")
        self.code = code
        #: True for errors worth retrying on a fresh connection
        #: (overload, drain-in-progress); honored by
        #: :class:`~repro.engine.recovery.RetryPolicy.is_transient`.
        self.transient = code in (
            protocol.E_OVERLOADED,
            protocol.E_SHUTTING_DOWN,
        )


class ServeClient:
    """One connection to a cardinality server."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame)

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame=max_frame)

    async def close(self) -> None:
        """Close the connection, tolerating a peer that is already gone."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # peer already gone; the socket is closed either way

    # ------------------------------------------------------------------
    # Frame plumbing
    # ------------------------------------------------------------------
    async def _read_response(self) -> Response:
        while True:
            chunk = await self._reader.read(65536)
            if not chunk:
                self._decoder.check_eof()
                raise ConnectionResetError(
                    "server closed the connection mid-response"
                )
            bodies = list(self._decoder.feed(chunk))
            if bodies:
                if len(bodies) > 1:
                    # Only ever request one response at a time here;
                    # pipelined reads use _read_responses below.
                    raise RuntimeError(
                        "unexpected extra response frames"
                    )
                return protocol.decode_response(bodies[0])

    async def _read_responses(self, count: int) -> list[Response]:
        responses: list[Response] = []
        while len(responses) < count:
            chunk = await self._reader.read(65536)
            if not chunk:
                self._decoder.check_eof()
                raise ConnectionResetError(
                    "server closed the connection mid-response"
                )
            for body in self._decoder.feed(chunk):
                responses.append(protocol.decode_response(body))
        if len(responses) > count:
            raise RuntimeError("unexpected extra response frames")
        return responses

    async def request(self, request: Request) -> Response:
        """Send one request and await its response (FIFO order)."""
        self._writer.write(encode_request(request))
        await self._writer.drain()
        return await self._read_response()

    @staticmethod
    def _expect(response: Response, expected: type) -> Response:
        if isinstance(response, Error):
            raise ServeError(response.code, response.message)
        if not isinstance(response, expected):
            raise RuntimeError(
                f"expected {expected.__name__}, got {response!r}"
            )
        return response

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    async def record(self, tenant: str, keys) -> int:
        """Record a batch of keys; returns the accepted count."""
        batch = np.ascontiguousarray(keys, dtype=np.uint64)
        response = self._expect(
            await self.request(Record(tenant, batch)), RecordOk
        )
        return int(response.accepted)  # type: ignore[union-attr]

    async def estimate(self, tenant: str) -> float:
        """The tenant's current O(1) estimate."""
        response = self._expect(
            await self.request(Estimate(tenant)), EstimateOk
        )
        return float(response.estimate)  # type: ignore[union-attr]

    async def estimate_many(self, tenants: Sequence[str]) -> list[float]:
        """Pipeline one ESTIMATE per tenant in a single write."""
        if not tenants:
            return []
        self._writer.write(
            b"".join(encode_request(Estimate(t)) for t in tenants)
        )
        await self._writer.drain()
        responses = await self._read_responses(len(tenants))
        return [
            float(self._expect(r, EstimateOk).estimate)  # type: ignore[union-attr]
            for r in responses
        ]

    async def stats(self) -> dict:
        """The server's STATS document."""
        response = self._expect(await self.request(Stats()), StatsOk)
        return dict(response.document)  # type: ignore[union-attr]

    async def checkpoint(self) -> int:
        """Drain and persist one generation; returns its number."""
        response = self._expect(
            await self.request(Checkpoint()), CheckpointOk
        )
        return int(response.generation)  # type: ignore[union-attr]

    async def export(self, tenant: str) -> bytes:
        """The tenant's state as a compact :mod:`repro.wire` frame.

        The server drains the tenant to a safe point first, so the frame
        is a consistent cut; an unknown tenant exports a deterministic
        empty pool (the merge identity).
        """
        response = self._expect(
            await self.request(Export(tenant)), ExportOk
        )
        return bytes(response.frame)  # type: ignore[union-attr]

    async def merge_in(self, tenant: str, frame: bytes) -> float:
        """Merge a wire frame into the tenant; returns the new estimate.

        An incompatible or undecodable frame raises :class:`ServeError`
        (E_INCOMPATIBLE / E_BAD_PAYLOAD) without dropping the
        connection.
        """
        response = self._expect(
            await self.request(MergeIn(tenant, frame)), MergeInOk
        )
        return float(response.estimate)  # type: ignore[union-attr]

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


#: Connection-level failures that justify a reconnect attempt.
_RECONNECTABLE = (
    ConnectionError,
    asyncio.IncompleteReadError,
    OSError,
    TimeoutError,
)


class RetryingClient:
    """A :class:`ServeClient` that reconnects through server restarts.

    Every verb retries under the given
    :class:`~repro.engine.recovery.RetryPolicy`: connection failures
    (including the initial connect) and transient server errors
    (OVERLOADED, SHUTTING_DOWN) trigger a reconnect-and-retry after the
    policy's deterministic backoff; the final failure is re-raised
    once attempts are exhausted. See the module docstring for the
    at-least-once RECORD semantics.
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: RetryPolicy | None = None,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy if policy is not None else RetryPolicy()
        self.max_frame = max_frame
        self._client: ServeClient | None = None

    async def _connected(self) -> ServeClient:
        if self._client is None:
            self._client = await ServeClient.connect(
                self.host, self.port, max_frame=self.max_frame
            )
        return self._client

    async def _disconnect(self) -> None:
        if self._client is not None:
            client, self._client = self._client, None
            try:
                await client.close()
            except _RECONNECTABLE:
                pass

    async def close(self) -> None:
        """Drop the current connection (a later verb reconnects)."""
        await self._disconnect()

    async def _call(self, method: str, *args):
        """Run one verb with reconnect-and-retry under the policy."""
        policy = self.policy
        attempt = 1
        while True:
            try:
                client = await self._connected()
                return await getattr(client, method)(*args)
            except _RECONNECTABLE as error:
                await self._disconnect()
                if attempt >= policy.max_attempts:
                    raise
                await asyncio.sleep(policy.delay(attempt))
            except ServeError as error:
                if (
                    attempt >= policy.max_attempts
                    or not policy.is_transient(error)
                ):
                    raise
                await self._disconnect()
                await asyncio.sleep(policy.delay(attempt))
            attempt += 1

    async def record(self, tenant: str, keys) -> int:
        """At-least-once RECORD (duplicate-insensitive, see module doc)."""
        return await self._call("record", tenant, keys)

    async def estimate(self, tenant: str) -> float:
        """Retrying :meth:`ServeClient.estimate`."""
        return await self._call("estimate", tenant)

    async def estimate_many(self, tenants: Sequence[str]) -> list[float]:
        """Retrying :meth:`ServeClient.estimate_many` (whole batch)."""
        return await self._call("estimate_many", tenants)

    async def stats(self) -> dict:
        """Retrying :meth:`ServeClient.stats`."""
        return await self._call("stats")

    async def checkpoint(self) -> int:
        """Retrying :meth:`ServeClient.checkpoint`."""
        return await self._call("checkpoint")

    async def export(self, tenant: str) -> bytes:
        """Retrying :meth:`ServeClient.export`."""
        return await self._call("export", tenant)

    async def merge_in(self, tenant: str, frame: bytes) -> float:
        """Retrying :meth:`ServeClient.merge_in` (idempotent: merges
        are unions, so a retried MERGE_IN cannot inflate the estimate)."""
        return await self._call("merge_in", tenant, frame)

    async def __aenter__(self) -> "RetryingClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
