"""Load generator / benchmark driver of the cardinality service.

Drives a running server through the real wire protocol with pipelined
connections, in two phases:

1. **record** — each connection streams RECORD frames round-robin over
   the tenant set, with per-(tenant, connection) disjoint key ranges so
   the exact distinct count per tenant is known in closed form;
2. **estimate** — each connection fires pipelined ESTIMATE bursts,
   measuring throughput and per-request latency (send-to-response,
   queueing inside a pipeline window included).

Between the phases a CHECKPOINT drains every pipeline, so the accuracy
check compares fully-applied estimates against the exact oracle. The
result dictionary is what ``tools/bench_snapshot.py --serve-out``
wraps into ``BENCH_serve.json``, and the whole module doubles as the
serve test suite's concurrency harness (the integration tests call
:func:`run_load` in-process against an ephemeral server).

Latency numbers are *client-observed*: they include the event loop and
pipeline-window queueing on both sides, which is what a deployed
caller experiences. QPS is wall-clock aggregate across connections.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

import numpy as np

from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.protocol import Estimate, FrameDecoder, Record, encode_request

__all__ = ["main", "run_load"]

#: Keys of tenant ``t`` / connection ``c`` start at
#: ``((t * connections + c) + 1) << KEY_SPACE_SHIFT`` — 2^33 per lane
#: keeps every lane disjoint up to 8G keys each.
KEY_SPACE_SHIFT = 33


def _tenant_name(index: int) -> str:
    return f"tenant-{index:03d}"


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * len(sorted_values))
    )
    return sorted_values[index]


async def _record_phase(
    host: str,
    port: int,
    connections: int,
    tenants: int,
    frames_per_connection: int,
    batch_size: int,
    window: int,
) -> tuple[int, float]:
    """Stream RECORD frames; returns (total keys, elapsed seconds)."""

    async def one_connection(conn_index: int) -> int:
        reader, writer = await asyncio.open_connection(host, port)
        decoder = FrameDecoder()
        sent = 0
        acked = 0
        keys_sent = 0
        next_key = {}
        try:
            while sent < frames_per_connection:
                burst = min(window, frames_per_connection - sent)
                payload = bytearray()
                for __ in range(burst):
                    tenant_index = sent % tenants
                    lane = tenant_index * connections + conn_index
                    start = next_key.setdefault(
                        tenant_index, (lane + 1) << KEY_SPACE_SHIFT
                    )
                    batch = np.arange(
                        start, start + batch_size, dtype=np.uint64
                    )
                    next_key[tenant_index] = start + batch_size
                    payload += encode_request(
                        Record(_tenant_name(tenant_index), batch)
                    )
                    keys_sent += batch_size
                    sent += 1
                writer.write(bytes(payload))
                await writer.drain()
                while acked < sent:
                    chunk = await reader.read(1 << 16)
                    if not chunk:
                        raise ConnectionResetError(
                            "server closed during record phase"
                        )
                    for body in decoder.feed(chunk):
                        response = protocol.decode_response(body)
                        if isinstance(response, protocol.Error):
                            raise RuntimeError(
                                f"RECORD failed: {response.code} "
                                f"{response.message}"
                            )
                        acked += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return keys_sent

    began = time.perf_counter()
    totals = await asyncio.gather(
        *(one_connection(index) for index in range(connections))
    )
    return sum(totals), time.perf_counter() - began


async def _estimate_phase(
    host: str,
    port: int,
    connections: int,
    tenants: int,
    requests_per_connection: int,
    window: int,
) -> tuple[int, float, list[float]]:
    """Fire pipelined ESTIMATEs; returns (count, seconds, latencies)."""

    async def one_connection(conn_index: int) -> list[float]:
        reader, writer = await asyncio.open_connection(host, port)
        decoder = FrameDecoder()
        # Pre-encode one frame per tenant; the hot loop only concatenates.
        frames = [
            encode_request(Estimate(_tenant_name(index)))
            for index in range(tenants)
        ]
        latencies: list[float] = []
        sent = 0
        answered = 0
        try:
            while answered < requests_per_connection:
                burst = min(window, requests_per_connection - sent)
                if burst > 0:
                    payload = b"".join(
                        frames[(sent + offset) % tenants]
                        for offset in range(burst)
                    )
                    sent_at = time.perf_counter()
                    writer.write(payload)
                    await writer.drain()
                    sent += burst
                target = sent
                while answered < target:
                    chunk = await reader.read(1 << 16)
                    if not chunk:
                        raise ConnectionResetError(
                            "server closed during estimate phase"
                        )
                    now = time.perf_counter()
                    for body in decoder.feed(chunk):
                        response = protocol.decode_response(body)
                        if isinstance(response, protocol.Error):
                            raise RuntimeError(
                                f"ESTIMATE failed: {response.code} "
                                f"{response.message}"
                            )
                        latencies.append(now - sent_at)
                        answered += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return latencies

    began = time.perf_counter()
    per_connection = await asyncio.gather(
        *(one_connection(index) for index in range(connections))
    )
    elapsed = time.perf_counter() - began
    latencies = [value for chunk in per_connection for value in chunk]
    return len(latencies), elapsed, latencies


async def run_load(
    host: str,
    port: int,
    tenants: int = 4,
    connections: int = 4,
    record_frames: int = 64,
    batch_size: int = 8192,
    estimate_requests: int = 5000,
    window: int = 64,
) -> dict:
    """Run both phases against a live server; returns the result doc.

    ``record_frames`` / ``estimate_requests`` are per connection. The
    accuracy section compares each tenant's post-drain estimate with
    the exact distinct count implied by the disjoint key lanes.
    """
    if tenants < 1 or connections < 1:
        raise ValueError("tenants and connections must be >= 1")
    record_keys, record_seconds = await _record_phase(
        host, port, connections, tenants, record_frames, batch_size, window
    )
    control = await ServeClient.connect(host, port)
    try:
        # Drain everything so the accuracy check sees applied state.
        # (CHECKPOINT needs a configured manager; STATS-only servers
        # can't be driven by the benchmark, which always configures one.)
        generation = await control.checkpoint()
        # Exact oracle: every (tenant, connection) lane is disjoint.
        frames_for = [
            record_frames // tenants
            + (1 if index < record_frames % tenants else 0)
            for index in range(tenants)
        ]
        accuracy = []
        for index in range(tenants):
            exact = frames_for[index] * batch_size * connections
            estimate = await control.estimate(_tenant_name(index))
            if exact:
                accuracy.append(abs(estimate - exact) / exact)
        stats = await control.stats()
    finally:
        await control.close()
    estimate_count, estimate_seconds, latencies = await _estimate_phase(
        host, port, connections, tenants, estimate_requests, window
    )
    latencies.sort()
    records = stats["records"]
    return {
        "config": {
            "tenants": tenants,
            "connections": connections,
            "record_frames_per_connection": record_frames,
            "batch_size": batch_size,
            "estimate_requests_per_connection": estimate_requests,
            "pipeline_window": window,
        },
        "record": {
            "keys": record_keys,
            "seconds": record_seconds,
            "keys_per_second": (
                record_keys / record_seconds if record_seconds else 0.0
            ),
        },
        "estimate": {
            "requests": estimate_count,
            "seconds": estimate_seconds,
            "qps": (
                estimate_count / estimate_seconds
                if estimate_seconds
                else 0.0
            ),
            "latency_seconds": {
                "p50": _percentile(latencies, 0.50),
                "p90": _percentile(latencies, 0.90),
                "p99": _percentile(latencies, 0.99),
            },
        },
        "accuracy": {
            "tenants": tenants,
            "max_relative_error": max(accuracy) if accuracy else 0.0,
        },
        "server": {
            "generation": generation,
            "records_submitted": records["submitted"],
            "records_applied": records["applied"],
            "records_dropped": records["dropped"],
        },
    }


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve.loadgen`` — drive a running server."""
    parser = argparse.ArgumentParser(
        prog="repro-serve-loadgen",
        description="Benchmark a running repro cardinality server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument(
        "--record-frames", type=int, default=64,
        help="RECORD frames per connection",
    )
    parser.add_argument("--batch-size", type=int, default=8192)
    parser.add_argument(
        "--estimate-requests", type=int, default=5000,
        help="ESTIMATE requests per connection",
    )
    parser.add_argument("--window", type=int, default=64)
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full result document as JSON",
    )
    arguments = parser.parse_args(argv)
    result = asyncio.run(
        run_load(
            arguments.host,
            arguments.port,
            tenants=arguments.tenants,
            connections=arguments.connections,
            record_frames=arguments.record_frames,
            batch_size=arguments.batch_size,
            estimate_requests=arguments.estimate_requests,
            window=arguments.window,
        )
    )
    if arguments.json:
        json.dump(result, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        record = result["record"]
        estimate = result["estimate"]
        print(
            f"record   {record['keys']:>12,} keys   "
            f"{record['keys_per_second']:>14,.0f} keys/s"
        )
        print(
            f"estimate {estimate['requests']:>12,} reqs   "
            f"{estimate['qps']:>14,.0f} qps   "
            f"p99 {estimate['latency_seconds']['p99'] * 1e3:.2f} ms"
        )
        print(
            "accuracy max relative error "
            f"{result['accuracy']['max_relative_error']:.4f}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
