"""Multi-tenant estimator registry behind the cardinality service.

One server hosts many independent flows — the per-flow regime of the
Self-Learning Bitmap lineage that SMB inherits — so the serving layer
keys everything on a *tenant* name. :class:`TenantRegistry` maps tenant
names to :class:`~repro.engine.shards.ShardPool` instances, creating
pools lazily on first RECORD with a configuration shared by every
tenant (:class:`TenantConfig`). Creation is deterministic: a tenant's
pool seed is derived from the registry seed and the tenant name, so two
registries built from the same config that ingest the same per-tenant
streams hold bit-identical state — the property the kill-and-resume
test asserts against a local oracle.

The registry serializes with the same strict-framing discipline as the
estimators and is registered with the checkpoint layer
(:func:`repro.engine.checkpoint.register_checkpointable`), so the whole
multi-tenant state rides one atomic
:class:`~repro.engine.recovery.CheckpointManager` generation::

    magic "RPTR" | u16 version | u32 config-JSON length | config JSON
    | u32 tenant count
    | per tenant, sorted by utf-8 name:
        u16 name length | name | u64 blob length | ShardPool blob

Tenants are sorted by encoded name, making the byte image a canonical
function of the logical state (dict insertion order cannot leak in);
``from_bytes`` rejects truncation, trailing bytes, unsorted or
duplicate tenants, and any config/blob mismatch rather than restore a
silently-wrong registry.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import asdict, dataclass

from repro.engine.checkpoint import register_checkpointable
from repro.engine.shards import ShardPool

__all__ = ["TenantConfig", "TenantLimitError", "TenantRegistry"]

_HEADER = struct.Struct("<4sHI")  # magic, version, config length
_COUNT = struct.Struct("<I")
_NAME = struct.Struct("<H")
_BLOB = struct.Struct("<Q")
_MAGIC = b"RPTR"
_VERSION = 1


class TenantLimitError(RuntimeError):
    """Raised when a RECORD would create a tenant beyond ``max_tenants``."""


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant estimator sizing, shared by every tenant of a server.

    ``memory_bits`` / ``design_cardinality`` size each tenant's pool
    exactly like the paper's single-flow setting; ``shards`` > 1 turns
    on hash-partitioned parallel ingest within a tenant; ``max_tenants``
    bounds server memory (each tenant costs ~``memory_bits`` bits).
    """

    estimator: str = "SMB"
    memory_bits: int = 5000
    shards: int = 1
    design_cardinality: int = 1_000_000
    seed: int = 0
    max_tenants: int = 1_000_000

    def __post_init__(self) -> None:
        if self.memory_bits < 64:
            raise ValueError(
                f"memory_bits must be >= 64, got {self.memory_bits}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.design_cardinality < 1:
            raise ValueError(
                "design_cardinality must be >= 1, got "
                f"{self.design_cardinality}"
            )
        if self.max_tenants < 1:
            raise ValueError(
                f"max_tenants must be >= 1, got {self.max_tenants}"
            )

    def canonical_json(self) -> str:
        """Deterministic JSON image (sorted keys, no whitespace)."""
        return json.dumps(
            asdict(self), sort_keys=True, separators=(",", ":")
        )

    def tenant_seed(self, tenant: str) -> int:
        """Deterministic pool seed for one tenant.

        Mixes the registry seed with a CRC of the tenant name so
        distinct tenants decorrelate while any two registries with the
        same config agree — required for the oracle comparisons in the
        serve tests and for bit-exact resume.
        """
        return (int(self.seed) * 0x9E3779B1 + zlib.crc32(
            tenant.encode("utf-8")
        )) & 0xFFFFFFFF

    def build_pool(self, tenant: str) -> ShardPool:
        """A fresh, empty pool for one tenant."""
        return ShardPool.of(
            self.estimator,
            self.memory_bits,
            self.shards,
            design_cardinality=self.design_cardinality,
            seed=self.tenant_seed(tenant),
        )


@register_checkpointable
class TenantRegistry:
    """Lazily-populated tenant-name → shard-pool map."""

    def __init__(self, config: TenantConfig) -> None:
        self.config = config
        self.pools: dict[str, ShardPool] = {}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def pool(self, tenant: str) -> ShardPool:
        """The tenant's pool, created on first use.

        Raises :class:`TenantLimitError` when creation would exceed
        ``max_tenants``.
        """
        existing = self.pools.get(tenant)
        if existing is not None:
            return existing
        if len(self.pools) >= self.config.max_tenants:
            raise TenantLimitError(
                f"tenant limit reached ({self.config.max_tenants}); "
                f"refusing to create {tenant!r}"
            )
        created = self.config.build_pool(tenant)
        self.pools[tenant] = created
        return created

    def estimate(self, tenant: str) -> float:
        """The tenant's current estimate; 0.0 for an unknown tenant.

        An unknown tenant has — observably — recorded nothing, so zero
        is the honest answer and ESTIMATE never mutates the registry
        (the high-QPS verb allocates nothing).
        """
        pool = self.pools.get(tenant)
        return pool.query() if pool is not None else 0.0

    def record_many(self, tenant: str, items) -> None:
        """Synchronous ingest (oracle/test path; the server uses
        :class:`~repro.engine.pipeline.IngestPipeline` instead)."""
        self.pool(tenant).record_many(items)

    def tenants(self) -> list[str]:
        """Tenant names, sorted (the serialization order)."""
        return sorted(self.pools)

    def __len__(self) -> int:
        return len(self.pools)

    def __repr__(self) -> str:
        return (
            f"TenantRegistry(tenants={len(self.pools)}, "
            f"config={self.config.canonical_json()})"
        )

    # ------------------------------------------------------------------
    # Serialization (strict framing, canonical bytes)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Canonical byte image: config, then pools sorted by name bytes."""
        config_raw = self.config.canonical_json().encode("utf-8")
        parts = [
            _HEADER.pack(_MAGIC, _VERSION, len(config_raw)),
            config_raw,
            _COUNT.pack(len(self.pools)),
        ]
        for name in sorted(
            self.pools, key=lambda tenant: tenant.encode("utf-8")
        ):
            name_raw = name.encode("utf-8")
            blob = self.pools[name].to_bytes()
            parts.append(_NAME.pack(len(name_raw)))
            parts.append(name_raw)
            parts.append(_BLOB.pack(len(blob)))
            parts.append(blob)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "TenantRegistry":
        if len(data) < _HEADER.size:
            raise ValueError("not a tenant registry: too short")
        magic, version, config_length = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise ValueError("not a tenant registry: bad magic")
        if version != _VERSION:
            raise ValueError(
                f"unsupported tenant registry version {version}"
            )
        offset = _HEADER.size
        config_raw = data[offset:offset + config_length]
        if len(config_raw) != config_length:
            raise ValueError("corrupt tenant registry: truncated config")
        offset += config_length
        try:
            config = TenantConfig(**json.loads(config_raw.decode("utf-8")))
        except (TypeError, ValueError) as error:
            raise ValueError(
                "corrupt tenant registry: bad config JSON"
            ) from error
        try:
            (count,) = _COUNT.unpack_from(data, offset)
        except struct.error as error:
            raise ValueError(
                "corrupt tenant registry: truncated tenant count"
            ) from error
        offset += _COUNT.size
        registry = cls(config)
        previous: bytes | None = None
        for __ in range(count):
            try:
                (name_length,) = _NAME.unpack_from(data, offset)
            except struct.error as error:
                raise ValueError(
                    "corrupt tenant registry: truncated tenant name length"
                ) from error
            offset += _NAME.size
            name_raw = data[offset:offset + name_length]
            if len(name_raw) != name_length:
                raise ValueError(
                    "corrupt tenant registry: truncated tenant name"
                )
            offset += name_length
            if previous is not None and name_raw <= previous:
                # Canonical order doubles as a duplicate check.
                raise ValueError(
                    "corrupt tenant registry: tenants out of order"
                )
            previous = name_raw
            try:
                (blob_length,) = _BLOB.unpack_from(data, offset)
            except struct.error as error:
                raise ValueError(
                    "corrupt tenant registry: truncated pool length"
                ) from error
            offset += _BLOB.size
            blob = data[offset:offset + blob_length]
            if len(blob) != blob_length:
                raise ValueError(
                    "corrupt tenant registry: truncated pool blob"
                )
            offset += blob_length
            registry.pools[name_raw.decode("utf-8")] = ShardPool.from_bytes(
                blob
            )
        if offset != len(data):
            raise ValueError(
                "corrupt tenant registry: trailing bytes after payload"
            )
        return registry
