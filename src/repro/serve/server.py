"""The asyncio cardinality server.

:class:`CardinalityServer` binds a TCP listener speaking the frame
protocol of :mod:`repro.serve.protocol` over a
:class:`~repro.serve.tenants.TenantRegistry`, with one
:class:`~repro.engine.pipeline.IngestPipeline` per active tenant.

**Connection model.** Each connection is an ``asyncio.Protocol`` (the
callback API, not streams — the hot ESTIMATE path must not pay a task
switch per request). Responses are strictly FIFO per connection, so
clients pipeline freely:

- while a connection has no asynchronous work pending, fast verbs
  (ESTIMATE, STATS, malformed frames) are answered *inline* inside
  ``data_received`` — a pipelined burst of ESTIMATEs is decoded,
  served and answered with a single ``write`` per ``data_received``
  call;
- the first slow verb (RECORD, CHECKPOINT) parks the connection's
  frames in a backlog drained by one sequential task, preserving order
  until the backlog empties, at which point the connection returns to
  inline mode.

**Backpressure** is layered: the per-connection backlog pauses the
transport (``pause_reading``) above a high-water mark and resumes below
a low-water mark, and the per-tenant pipelines' bounded shard queues
block the executor thread running ``submit`` — a flooding producer
stalls in its own lane; it cannot exhaust server memory.

**Ingest vs checkpoint.** RECORDs hold a shared (reader) side of an
async gate; CHECKPOINT — and the final checkpoint of :meth:`stop` —
takes the exclusive side, drains every pipeline to a safe point and
saves the whole registry as one atomic
:class:`~repro.engine.recovery.CheckpointManager` generation. A server
restarted with ``resume=True`` restores the newest valid generation
and continues bit-exact from that safe point.

**Estimates are lock-light.** ESTIMATE reads the tenant pool's O(1)
query directly — no drain, no locks, no allocation for unknown tenants
— so its answer reflects all *applied* records and may lag records
still queued in the pipeline; issue CHECKPOINT (or stop recording)
first when an exact cut-off matters. This is the paper's operating
point: the estimate is available at any instant at O(1) cost.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import TYPE_CHECKING, cast

from repro.engine.pipeline import DEFAULT_CHUNK, IngestPipeline
from repro.estimators.base import CardinalityEstimator, IncompatibleSketchError
from repro.obs.metrics import get_registry
from repro.serve import protocol
from repro.serve.protocol import (
    Checkpoint,
    CheckpointOk,
    Estimate,
    EstimateOk,
    Export,
    ExportOk,
    FrameDecoder,
    MergeIn,
    MergeInOk,
    ProtocolError,
    Record,
    RecordOk,
    Stats,
    StatsOk,
    encode_error,
    encode_response,
)
from repro.serve.tenants import TenantConfig, TenantLimitError, TenantRegistry
from repro.wire import decode_sketch, encode_sketch

if TYPE_CHECKING:
    from repro.engine.recovery import CheckpointManager, Generation

__all__ = ["CardinalityServer"]

#: Per-connection backlog watermarks (frames). Above the high mark the
#: transport stops reading; below the low mark it resumes.
BACKLOG_HIGH = 64
BACKLOG_LOW = 8

#: STATS includes the per-tenant record accounting only up to this many
#: tenants; beyond it only the aggregate is reported (the document is
#: sent on every STATS request and must stay bounded).
STATS_TENANT_DETAIL_LIMIT = 256


class _IngestGate:
    """A tiny async reader/writer gate.

    RECORD handlers hold the shared side; CHECKPOINT and shutdown take
    the exclusive side. A pending writer blocks *new* readers (no
    writer starvation) and then waits out the in-flight ones, so the
    pipelines it drains are quiesced — the asyncio twin of the
    pipeline's own producer pause gate.
    """

    def __init__(self) -> None:
        self._readers = 0  # guarded-by: _condition
        self._writer = False  # guarded-by: _condition
        self._condition = asyncio.Condition()

    async def acquire_read(self) -> None:
        async with self._condition:
            while self._writer:
                await self._condition.wait()
            self._readers += 1

    async def release_read(self) -> None:
        async with self._condition:
            self._readers -= 1
            if not self._readers:
                self._condition.notify_all()

    async def acquire_write(self) -> None:
        async with self._condition:
            while self._writer:
                await self._condition.wait()
            self._writer = True
            try:
                while self._readers:
                    await self._condition.wait()
            except asyncio.CancelledError:
                # Cancelled while waiting out readers (a client can
                # vanish mid-CHECKPOINT): roll the claim back, or every
                # future writer *and reader* would block forever.
                self._writer = False
                self._condition.notify_all()
                raise

    async def release_write(self) -> None:
        async with self._condition:
            self._writer = False
            self._condition.notify_all()


class _Connection(asyncio.Protocol):
    """One client connection: frame splitting, FIFO dispatch, writes."""

    def __init__(self, server: "CardinalityServer") -> None:
        self._server = server
        self._decoder = FrameDecoder(server.max_frame)
        self._backlog: deque[bytes] = deque()
        self._worker: asyncio.Task | None = None
        self._paused = False
        self.transport: asyncio.Transport | None = None

    # -- asyncio.Protocol callbacks ------------------------------------
    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = cast(asyncio.Transport, transport)
        self._server._register_connection(self)

    def connection_lost(self, exc: Exception | None) -> None:
        self.transport = None
        if self._worker is not None:
            self._worker.cancel()
        self._server._unregister_connection(self)

    def data_received(self, data: bytes) -> None:
        server = self._server
        if server.metrics is not None:
            server.metrics.bytes_read.inc(len(data))
        out = bytearray()
        try:
            for body in self._decoder.feed(data):
                if self._worker is not None:
                    self._backlog.append(body)
                    continue
                response = server.handle_inline(body)
                if response is None:
                    self._backlog.append(body)
                    self._worker = server._loop.create_task(
                        self._drain_backlog()
                    )
                else:
                    out += response
        except ProtocolError as error:
            # Framing itself is lost: answer once, then hang up.
            out += encode_error(error.code, str(error))
            self._write(bytes(out))
            if server.metrics is not None:
                server.metrics.error(error.code)
            if self.transport is not None:
                self.transport.close()
            return
        if out:
            self._write(bytes(out))
        self._maybe_pause()

    def eof_received(self) -> bool:
        return False  # close when the peer half-closes

    # -- internals -----------------------------------------------------
    def _write(self, payload: bytes) -> None:
        if self.transport is None:
            return
        self.transport.write(payload)
        if self._server.metrics is not None:
            self._server.metrics.bytes_written.inc(len(payload))

    def _maybe_pause(self) -> None:
        if (
            not self._paused
            and len(self._backlog) > BACKLOG_HIGH
            and self.transport is not None
        ):
            self._paused = True
            self.transport.pause_reading()

    def _maybe_resume(self) -> None:
        if (
            self._paused
            and len(self._backlog) < BACKLOG_LOW
            and self.transport is not None
        ):
            self._paused = False
            self.transport.resume_reading()

    async def _drain_backlog(self) -> None:
        """Serve backlogged frames in order, then return to inline mode."""
        try:
            while self._backlog:
                body = self._backlog.popleft()
                try:
                    response = await self._server.handle(body)
                except Exception as error:
                    # An unexpected handler failure must not kill the
                    # drain task: the stranded frames would never be
                    # answered while later fast verbs are served inline
                    # ahead of them, breaking FIFO for pipelining
                    # clients. Answer E_INTERNAL and keep draining.
                    response = self._server._error(
                        protocol.E_INTERNAL, f"internal error: {error!r}"
                    )
                self._write(response)
                self._maybe_resume()
        finally:
            # No await between the empty-backlog check and this line,
            # so data_received cannot have parked a frame that nobody
            # will drain.
            self._worker = None
            if self._backlog and self.transport is not None:
                # Exited with frames still parked (cancellation or a
                # non-Exception failure): responses can no longer be
                # delivered in order, so hang up rather than desync.
                self.transport.close()
            self._maybe_resume()


class CardinalityServer:
    """The serving layer: a TCP frame server over a tenant registry.

    Parameters
    ----------
    config:
        Estimator sizing shared by every tenant.
    checkpoint_manager:
        Optional durability wiring; enables the CHECKPOINT verb, the
        final checkpoint of :meth:`stop`, and ``resume``.
    resume:
        Restore the newest valid generation from the manager's
        directory at :meth:`start` (fresh start when none restores).
    chunk_size / queue_depth:
        Per-tenant :class:`~repro.engine.pipeline.IngestPipeline`
        tuning. Each active tenant costs ``config.shards`` worker
        threads — bound ``config.max_tenants`` accordingly.
    workers:
        When positive, each tenant's pipeline ingests through that many
        shard worker *processes* with shared-memory estimator planes
        instead of in-process threads (see docs/parallel.md). ESTIMATE
        stays an inline O(1) read: it snapshots the per-worker estimate
        table in shared memory rather than querying the (stale between
        checkpoints) template pool. Each active tenant then costs
        ``workers`` processes — bound ``config.max_tenants`` accordingly.
    """

    def __init__(
        self,
        config: TenantConfig | None = None,
        checkpoint_manager: "CheckpointManager | None" = None,
        resume: bool = False,
        chunk_size: int = DEFAULT_CHUNK,
        queue_depth: int = 8,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
        workers: int = 0,
    ) -> None:
        self.config = config if config is not None else TenantConfig()
        self.checkpoint_manager = checkpoint_manager
        self.resume = bool(resume)
        self.chunk_size = int(chunk_size)
        self.queue_depth = int(queue_depth)
        self.workers = int(workers)
        self.max_frame = int(max_frame)
        self.registry = TenantRegistry(self.config)
        #: Number of the newest generation saved or restored (0 = none).
        self.last_generation = 0
        self._pipelines: dict[str, IngestPipeline] = {}
        self._connections: set[_Connection] = set()
        self._gate = _IngestGate()
        self._listener: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop = None  # type: ignore[assignment]
        self._shutting_down = False
        self._started_at = 0.0
        obs = get_registry()
        if obs.enabled:
            from repro.obs.instrument import ServerMetrics

            self.metrics: "ServerMetrics | None" = ServerMetrics(obs)
        else:
            self.metrics = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind and listen; returns the actual (host, port) bound.

        With ``resume=True`` and a checkpoint manager, the newest valid
        generation is restored first (a missing or unreadable directory
        falls back to a fresh registry — the same semantics as the
        engine CLI's ``--resume``).
        """
        if self._listener is not None:
            raise RuntimeError("server is already started")
        self._loop = asyncio.get_running_loop()
        self._started_at = time.perf_counter()
        if self.resume and self.checkpoint_manager is not None:
            from repro.engine.recovery import RecoveryError

            try:
                restored, generation = self.checkpoint_manager.load_latest()
            except RecoveryError:
                pass  # nothing restorable: fresh start
            else:
                if not isinstance(restored, TenantRegistry):
                    raise RecoveryError(
                        "checkpoint directory holds a "
                        f"{type(restored).__name__}, not a TenantRegistry"
                    )
                if (
                    restored.config.canonical_json()
                    != self.config.canonical_json()
                ):
                    # Adopting the checkpoint's config would silently
                    # ignore the server's sizing flags; keeping the
                    # server's would mis-describe the restored pools.
                    raise RecoveryError(
                        "checkpointed tenant config does not match the "
                        f"server's: checkpoint has "
                        f"{restored.config.canonical_json()}, server "
                        f"configured {self.config.canonical_json()}; "
                        "restart with matching sizing flags or point at "
                        "a fresh checkpoint directory"
                    )
                self.registry = restored
                self.last_generation = generation.generation
        self._listener = await self._loop.create_server(
            lambda: _Connection(self), host, port
        )
        sockets = self._listener.sockets
        bound = sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        """Block until the listener is closed (by :meth:`stop`)."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        try:
            await self._listener.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> "Generation | None":
        """Graceful drain: stop accepting, quiesce, checkpoint, close.

        New RECORD/CHECKPOINT requests are refused with SHUTTING_DOWN
        while in-flight ones are waited out (the exclusive gate); every
        pipeline is then closed (which drains it) and — when a manager
        is configured — one final generation captures the fully-applied
        registry, so a ``resume`` restart is bit-exact with no replay.
        """
        self._shutting_down = True
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        await self._gate.acquire_write()
        try:
            final = await self._loop.run_in_executor(
                None, self._close_and_checkpoint
            )
        finally:
            await self._gate.release_write()
        for connection in list(self._connections):
            if connection.transport is not None:
                connection.transport.close()
        return final

    def _close_and_checkpoint(self) -> "Generation | None":
        for pipeline in self._pipelines.values():
            pipeline.close()
        if self.checkpoint_manager is None:
            return None
        generation = self.checkpoint_manager.save(
            cast(CardinalityEstimator, self.registry),
            meta=self._checkpoint_meta(final=True),
        )
        self.last_generation = generation.generation
        return generation

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle_inline(self, body: bytes) -> bytes | None:
        """Serve one frame synchronously if it needs no awaiting.

        Returns the encoded response for fast verbs (ESTIMATE, STATS)
        and for malformed frames; returns ``None`` for slow verbs
        (RECORD, CHECKPOINT), which the caller must queue for the
        sequential path.
        """
        metrics = self.metrics
        began = time.perf_counter() if metrics is not None else 0.0
        try:
            request = protocol.decode_request(body)
        except ProtocolError as error:
            if metrics is not None:
                metrics.error(error.code)
            return encode_error(error.code, str(error))
        if isinstance(request, (Estimate, Stats)):
            return self._respond_fast(request, began)
        return None

    def _respond_fast(
        self, request: Estimate | Stats, began: float
    ) -> bytes:
        try:
            if isinstance(request, Estimate):
                response = encode_response(
                    EstimateOk(self._estimate(request.tenant))
                )
                verb = "estimate"
            else:
                response = encode_response(StatsOk(self.stats_document()))
                verb = "stats"
        except Exception as error:
            # The lock-light fast path reads estimator state that
            # pipeline workers mutate concurrently; an exception here
            # (however unlikely — SMB.query snapshots its counters)
            # must become an error *frame*, not escape data_received
            # and tear the connection down.
            return self._error(protocol.E_INTERNAL, f"query failed: {error!r}")
        metrics = self.metrics
        if metrics is not None:
            metrics.requests[verb].inc()
            metrics.latency[verb].observe(time.perf_counter() - began)
        return response

    async def handle(self, body: bytes) -> bytes:
        """Serve one frame on the sequential (backlog) path."""
        metrics = self.metrics
        began = time.perf_counter() if metrics is not None else 0.0
        try:
            request = protocol.decode_request(body)
        except ProtocolError as error:
            if metrics is not None:
                metrics.error(error.code)
            return encode_error(error.code, str(error))
        if isinstance(request, (Estimate, Stats)):
            return self._respond_fast(request, began)
        if metrics is not None:
            metrics.in_flight.inc()
        try:
            if isinstance(request, Record):
                response = await self._handle_record(request)
                verb = "record"
            elif isinstance(request, Export):
                response = await self._handle_export(request)
                verb = "export"
            elif isinstance(request, MergeIn):
                response = await self._handle_merge_in(request)
                verb = "merge_in"
            else:
                assert isinstance(request, Checkpoint)
                response = await self._handle_checkpoint()
                verb = "checkpoint"
        finally:
            if metrics is not None:
                metrics.in_flight.dec()
        if metrics is not None:
            metrics.requests[verb].inc()
            metrics.latency[verb].observe(time.perf_counter() - began)
        return response

    async def _handle_record(self, request: Record) -> bytes:
        if self._shutting_down:
            return self._error(
                protocol.E_SHUTTING_DOWN, "server is draining"
            )
        # Shielded: a client disconnect cancels its backlog worker, but
        # the submit keeps running in the executor regardless — the gate
        # must stay held until it finishes, or a concurrent CHECKPOINT
        # could capture a half-enqueued chunk.
        return await asyncio.shield(self._record_gated(request))

    async def _record_gated(self, request: Record) -> bytes:
        await self._gate.acquire_read()
        try:
            try:
                pipeline = self._pipeline(request.tenant)
            except TenantLimitError as error:
                return self._error(protocol.E_OVERLOADED, str(error))
            try:
                accepted = await self._loop.run_in_executor(
                    None, pipeline.submit, request.keys
                )
            except RuntimeError as error:
                return self._error(protocol.E_INTERNAL, str(error))
            # Acknowledge what the pipeline actually enqueued, not what
            # the client sent — they differ when sub-batches are dropped
            # (worker failure, fault injection).
            return encode_response(RecordOk(int(accepted)))
        finally:
            await self._gate.release_read()

    async def _handle_checkpoint(self) -> bytes:
        if self.checkpoint_manager is None:
            return self._error(
                protocol.E_INTERNAL,
                "checkpointing is not configured (start the server with "
                "a checkpoint directory)",
            )
        if self._shutting_down:
            return self._error(
                protocol.E_SHUTTING_DOWN, "server is draining"
            )
        # Shielded: cancellation mid-checkpoint (client disconnect) must
        # not release the exclusive gate while the save still runs in
        # the executor — the drain/save/release sequence is atomic with
        # respect to connection lifetime.
        return await asyncio.shield(self._checkpoint_gated())

    async def _checkpoint_gated(self) -> bytes:
        await self._gate.acquire_write()
        try:
            generation = await self._loop.run_in_executor(
                None, self._checkpoint_sync
            )
        except (OSError, RuntimeError, ValueError) as error:
            return self._error(protocol.E_INTERNAL, str(error))
        finally:
            await self._gate.release_write()
        return encode_response(CheckpointOk(generation.generation))

    def _checkpoint_sync(self) -> "Generation":
        # The exclusive gate guarantees no RECORD is mid-submit, so
        # drain really is a safe point across every tenant at once.
        for pipeline in self._pipelines.values():
            pipeline.drain()
        for pipeline in self._pipelines.values():
            # Process-backed pipelines: pull worker shard state back
            # into the registry's pools so the generation captures it
            # (no-op on the threaded backend).
            pipeline.sync_pool()
        assert self.checkpoint_manager is not None
        generation = self.checkpoint_manager.save(
            cast(CardinalityEstimator, self.registry),
            meta=self._checkpoint_meta(final=False),
        )
        self.last_generation = generation.generation
        return generation

    def _checkpoint_meta(self, final: bool) -> dict:
        submitted, applied, dropped = self._record_totals()
        return {
            "records_submitted": submitted,
            "records_applied": applied,
            "records_dropped": dropped,
            "tenants": len(self.registry),
            "final": final,
        }

    async def _handle_export(self, request: Export) -> bytes:
        if self._shutting_down:
            return self._error(
                protocol.E_SHUTTING_DOWN, "server is draining"
            )
        # Shielded like CHECKPOINT: the drain/encode must finish and the
        # exclusive gate be released even if the client disconnects.
        return await asyncio.shield(self._export_gated(request.tenant))

    async def _export_gated(self, tenant: str) -> bytes:
        await self._gate.acquire_write()
        try:
            frame = await self._loop.run_in_executor(
                None, self._export_sync, tenant
            )
        except (RuntimeError, ValueError) as error:
            return self._error(protocol.E_INTERNAL, str(error))
        finally:
            await self._gate.release_write()
        return encode_response(ExportOk(frame))

    def _export_sync(self, tenant: str) -> bytes:
        # The exclusive gate quiesced ingest, so drain reaches a safe
        # point and the exported frame is a consistent cut.
        pipeline = self._pipelines.get(tenant)
        if pipeline is not None:
            pipeline.drain()
            pipeline.sync_pool()
        pool = self.registry.pools.get(tenant)
        if pool is None:
            # Unknown tenant: export a deterministic empty pool without
            # registering it — EXPORT, like ESTIMATE, never mutates the
            # registry, and the empty frame merges as the identity.
            pool = self.config.build_pool(tenant)
        return encode_sketch(pool)

    async def _handle_merge_in(self, request: MergeIn) -> bytes:
        if self._shutting_down:
            return self._error(
                protocol.E_SHUTTING_DOWN, "server is draining"
            )
        # Shielded: the registry pool mutates inside the executor; the
        # gate must outlive any client disconnect mid-merge.
        return await asyncio.shield(self._merge_in_gated(request))

    async def _merge_in_gated(self, request: MergeIn) -> bytes:
        await self._gate.acquire_write()
        try:
            estimate = await self._loop.run_in_executor(
                None, self._merge_in_sync, request.tenant, request.frame
            )
        except TenantLimitError as error:
            return self._error(protocol.E_OVERLOADED, str(error))
        except (IncompatibleSketchError, TypeError, NotImplementedError) as error:
            # A bad sketch is the *request's* problem, not the
            # connection's: answer a typed error frame and keep serving.
            return self._error(protocol.E_INCOMPATIBLE, str(error))
        except ValueError as error:
            return self._error(
                protocol.E_BAD_PAYLOAD, f"undecodable sketch frame: {error}"
            )
        except RuntimeError as error:
            return self._error(protocol.E_INTERNAL, str(error))
        finally:
            await self._gate.release_write()
        return encode_response(MergeInOk(estimate))

    def _merge_in_sync(self, tenant: str, frame: bytes) -> float:
        sketch = decode_sketch(frame)  # ValueError -> E_BAD_PAYLOAD
        pipeline = self._pipelines.get(tenant)
        if pipeline is not None and pipeline.workers:
            # Process workers hold shard state in their own shared-memory
            # arenas; sync_pool only pulls worker state *into* the
            # registry pool — there is no push-back, so a merge here
            # would be silently overwritten by the next sync. Refuse
            # rather than lose data; merge before ingest starts, or
            # into a thread-backed server.
            raise RuntimeError(
                f"tenant {tenant!r} has an active process-backed "
                "pipeline; MERGE_IN cannot reach worker shard state "
                "(use workers=0, or merge before ingest starts)"
            )
        if pipeline is not None:
            # Thread backend mutates the registry pool in place; drain
            # to a safe point (the gate already stopped producers) so
            # the merge composes with fully-applied records.
            pipeline.drain()
        pool = self.registry.pool(tenant)  # may raise TenantLimitError
        pool.merge(sketch)  # typed incompatibility errors propagate
        return float(pool.query())

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def _pipeline(self, tenant: str) -> IngestPipeline:
        pipeline = self._pipelines.get(tenant)
        if pipeline is None:
            pool = self.registry.pool(tenant)  # may raise TenantLimitError
            pipeline = IngestPipeline(
                pool,
                chunk_size=self.chunk_size,
                queue_depth=self.queue_depth,
                workers=self.workers,
            )
            self._pipelines[tenant] = pipeline
            if self.metrics is not None:
                self.metrics.tenants.set(len(self.registry))
        return pipeline

    def _estimate(self, tenant: str) -> float:
        """The tenant's live estimate (the ESTIMATE fast path).

        A tenant with an active pipeline answers through it —
        with process workers that is an O(1) seqlock read of the
        shared-memory estimate table, never a stale template-pool
        query. A tenant without a pipeline (restored from checkpoint,
        no RECORD yet) answers from the registry; an unknown tenant is
        0.0 and allocates nothing.
        """
        pipeline = self._pipelines.get(tenant)
        if pipeline is not None:
            return pipeline.query_live()
        return self.registry.estimate(tenant)

    def _record_totals(self) -> tuple[int, int, int]:
        submitted = applied = dropped = 0
        for pipeline in self._pipelines.values():
            submitted += pipeline.records_submitted
            applied += pipeline.records_applied
            dropped += pipeline.records_dropped
        return submitted, applied, dropped

    def stats_document(self) -> dict:
        """The STATS response body (also useful for in-process tests).

        ``records`` satisfies ``submitted == applied + dropped`` at any
        drained safe point (after CHECKPOINT, or once ingest is idle);
        mid-flight, ``applied`` lags ``submitted`` by what is queued.
        """
        submitted, applied, dropped = self._record_totals()
        document: dict = {
            "tenants": len(self.registry),
            "connections": len(self._connections),
            "shutting_down": self._shutting_down,
            "uptime_seconds": (
                time.perf_counter() - self._started_at
                if self._started_at
                else 0.0
            ),
            "records": {
                "submitted": submitted,
                "applied": applied,
                "dropped": dropped,
            },
            "checkpoint": {
                "configured": self.checkpoint_manager is not None,
                "generation": self.last_generation,
            },
        }
        if len(self.registry) <= STATS_TENANT_DETAIL_LIMIT:
            document["per_tenant"] = {
                tenant: {
                    "submitted": pipe.records_submitted,
                    "applied": pipe.records_applied,
                    "dropped": pipe.records_dropped,
                }
                for tenant, pipe in sorted(self._pipelines.items())
            }
        obs = get_registry()
        if obs.enabled:
            from repro.obs.render import snapshot

            document["metrics"] = snapshot(obs)["metrics"]
        return document

    def _error(self, code: int, message: str) -> bytes:
        if self.metrics is not None:
            self.metrics.error(code)
        return encode_error(code, message)

    # -- connection registry -------------------------------------------
    def _register_connection(self, connection: _Connection) -> None:
        self._connections.add(connection)
        if self.metrics is not None:
            self.metrics.connections.set(len(self._connections))
            self.metrics.connections_total.inc()

    def _unregister_connection(self, connection: _Connection) -> None:
        self._connections.discard(connection)
        if self.metrics is not None:
            self.metrics.connections.set(len(self._connections))

    def __repr__(self) -> str:
        return (
            f"CardinalityServer(tenants={len(self.registry)}, "
            f"connections={len(self._connections)}, "
            f"generation={self.last_generation}, "
            f"shutting_down={self._shutting_down})"
        )
