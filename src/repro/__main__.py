"""``python -m repro`` entry point."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into e.g. `head`: exit quietly like other CLIs.
        sys.stderr.close()
        sys.exit(0)
