"""Exposition: Prometheus text rendering and JSON snapshots.

Two interchangeable views of a :class:`~repro.obs.metrics.MetricsRegistry`:

- :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, one ``name{labels} value`` line per
  sample, histograms expanded into ``_bucket``/``_sum``/``_count``
  series) for scraping or eyeballing;
- :func:`snapshot` / :func:`write_snapshot` — a JSON document of the
  same data (validated by ``tools/bench_snapshot.py --check-metrics``
  in CI), suitable for diffing runs and machine consumption.

:func:`parse_prometheus` parses the text format back into a
``sample-name → value`` map; the round-trip (snapshot → text → parse)
is asserted by ``tests/test_obs.py``.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "parse_prometheus",
    "render_prometheus",
    "snapshot",
    "write_snapshot",
]

#: Identifies the producer inside JSON snapshots.
GENERATOR = "repro.obs"


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _label_suffix(labels: Mapping[str, str]) -> str:
    """Render ``{k="v",...}`` (empty string when there are no labels)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _merge_labels(
    labels: Mapping[str, str], extra: Mapping[str, str]
) -> dict[str, str]:
    merged = dict(labels)
    merged.update(extra)
    return merged


def snapshot(
    registry: MetricsRegistry,
    run: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Freeze a registry into a JSON-serializable snapshot document.

    The document carries a ``generated_by`` marker, the full metric
    dump (see :meth:`~repro.obs.metrics.MetricsRegistry.collect` for
    the per-family shape) and, optionally, a flat ``run`` section of
    run-level facts (e.g. the engine CLI's ``records_submitted``).
    """
    document: dict[str, object] = {
        "generated_by": GENERATOR,
        "metrics": registry.collect(),
    }
    if run is not None:
        document["run"] = dict(run)
    return document


def write_snapshot(
    registry: MetricsRegistry,
    path: str | os.PathLike,
    run: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Write :func:`snapshot` to ``path`` atomically; returns the document.

    The JSON goes to a sibling temp file first and is moved into place
    with ``os.replace``, so a concurrent reader (or the periodic
    snapshotter overwriting an earlier tick) never sees a torn file.
    """
    document = snapshot(registry, run=run)
    path = os.fspath(path)
    temp_path = f"{path}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)
    return document


def render_prometheus(
    source: MetricsRegistry | Mapping[str, object],
) -> str:
    """Render a registry (or a :func:`snapshot` document) as Prometheus text.

    Counters render with the conventional ``_total``-style single line
    per sample; histograms expand into cumulative ``_bucket{le=...}``
    series plus ``_sum`` and ``_count``. Quantile summaries (p50 etc.)
    are a JSON-snapshot convenience and are *not* exposed in the text
    format — Prometheus derives quantiles from the buckets.
    """
    if isinstance(source, MetricsRegistry):
        metrics = source.collect()
    else:
        metrics = source["metrics"]  # type: ignore[index]
    lines: list[str] = []
    for family in metrics:
        name = family["name"]
        lines.append(f"# HELP {name} {family.get('help', '')}".rstrip())
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if family["type"] == "histogram":
                for bound, count in sample["buckets"]:
                    suffix = _label_suffix(
                        _merge_labels(labels, {"le": bound})
                    )
                    lines.append(f"{name}_bucket{suffix} {count}")
                lines.append(
                    f"{name}_sum{_label_suffix(labels)} {sample['sum']}"
                )
                lines.append(
                    f"{name}_count{_label_suffix(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_suffix(labels)} {sample['value']}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse Prometheus text back into ``'name{labels}' → value``.

    Supports exactly what :func:`render_prometheus` emits (comments,
    ``name`` / ``name{k="v",...}`` sample lines); used by the snapshot
    round-trip test and the ``repro stats --format prom`` path's
    self-check. Label order is preserved from the input line, so a
    render → parse → compare round-trip is key-stable.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, __, value = line.rpartition(" ")
        if not key:
            raise ValueError(f"malformed exposition line: {line!r}")
        samples[key] = float(value)
    return samples
