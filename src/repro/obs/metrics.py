"""Metric primitives: counters, gauges, histograms, labeled families.

A deliberately tiny, dependency-free metrics substrate modeled on the
Prometheus data model:

- :class:`Counter` — a monotonically increasing total;
- :class:`Gauge` — a value that can move both ways;
- :class:`Histogram` — fixed upper-bound buckets with cumulative
  counts, a running sum, and interpolated quantiles (p50/p90/p99);
- :class:`MetricFamily` — one named metric with a fixed label schema
  and one child instrument per label-value combination;
- :class:`MetricsRegistry` — the process-wide collection of families,
  snapshot-able as plain data for the renderers in
  :mod:`repro.obs.render`.

**Zero-cost-when-disabled policy.** The module-level default registry is
a :class:`NullRegistry` whose instruments are shared no-op singletons:
every ``inc``/``set``/``observe`` on them is a single empty method call,
and instrumented code paths are expected to hold an ``is None`` /
``registry.enabled`` guard so that the *disabled* configuration performs
no metric work at all. Enabled instruments may only be touched per
chunk, batch or operation — never per stream item; the
``purity.metric-in-loop`` rule of :mod:`repro.analysis` enforces this
statically for the hot plane paths.

All instruments are thread-safe (the ingest pipeline's shard workers
observe histograms concurrently). Nothing in this module reads any
clock: durations are measured at the instrumentation site with
``time.perf_counter()`` and fed into histograms only (the
``determinism.clock-into-metric`` rule keeps clock readings out of
counters and gauges, so JSON snapshots of counting metrics stay
deterministic for seeded runs).
"""

from __future__ import annotations

import math
import re
import threading
from typing import Iterator, Mapping, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
]

#: Default histogram bucket upper bounds, in seconds — spanning the
#: microsecond-scale batch applies up to multi-second checkpoint saves.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically increasing total (e.g. records ingested)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        # analysis: allow(guards.unguarded-access) -- lock-free read of
        # a single float reference; the GIL makes it untearable, and a
        # scrape observing a value one inc stale is correct behaviour.
        return self._value


class Gauge:
    """An instantaneous value that can move both ways (e.g. queue depth)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the current value."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the current value."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current value."""
        # analysis: allow(guards.unguarded-access) -- same single-read
        # waiver as Counter.value: GIL-atomic, staleness is fine.
        return self._value


class Histogram:
    """Fixed-bucket distribution with interpolated quantiles.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    Quantiles are estimated exactly like Prometheus'
    ``histogram_quantile``: rank the target observation among the
    cumulative bucket counts and interpolate linearly inside the bucket
    it falls in (observations landing in the ``+Inf`` bucket report the
    last finite bound).
    """

    __slots__ = ("_lock", "bounds", "_counts", "_count", "_sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self._lock = threading.Lock()
        self.bounds = bounds
        # +1 for the +Inf bucket  # guarded-by: _lock
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = self._bucket_index(float(value))
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (bisect on the bounds)
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @property
    def count(self) -> int:
        """Total number of observations."""
        # analysis: allow(guards.unguarded-access) -- single GIL-atomic
        # int read; a scrape one observation stale is fine.
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        # analysis: allow(guards.unguarded-access) -- single GIL-atomic
        # float read; same staleness waiver as count.
        return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        with self._lock:
            counts = list(self._counts)
        for bound, count in zip(self.bounds, counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Interpolated ``q``-quantile (0 <= q <= 1); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        buckets = self.cumulative_buckets()
        total = buckets[-1][1]
        if total == 0:
            return 0.0
        rank = q * total
        previous_bound, previous_cum = 0.0, 0
        for bound, cumulative in buckets:
            if cumulative >= rank:
                if not math.isfinite(bound):
                    return self.bounds[-1]
                if cumulative == previous_cum:
                    return bound
                fraction = (rank - previous_cum) / (cumulative - previous_cum)
                return previous_bound + fraction * (bound - previous_bound)
            previous_bound, previous_cum = bound, cumulative
        return self.bounds[-1]  # pragma: no cover - rank <= total always hits

    def percentiles(self) -> dict[str, float]:
        """The conventional p50/p90/p99 summary."""
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricFamily:
    """One named metric and its children, keyed by label values.

    A family with no label names holds exactly one child (the family's
    registry accessor returns that child directly for convenience); a
    labeled family materializes one child per distinct label-value
    combination on first use.
    """

    __slots__ = ("name", "kind", "help", "label_names", "_buckets",
                 "_lock", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}  # guarded-by: _lock

    def labels(self, **labels: str) -> object:
        """The child instrument for one label-value combination."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        # analysis: allow(guards.unguarded-access) -- double-checked
        # fast path: a lock-free .get() on a dict the GIL keeps
        # internally consistent; the authoritative insert below is a
        # setdefault under the lock, so a miss here only costs the
        # slow path, never correctness.
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _make_child(self) -> object:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self._buckets)

    def samples(self) -> Iterator[tuple[tuple[str, ...], object]]:
        """``(label_values, instrument)`` pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return iter(items)


class MetricsRegistry:
    """A process-wide, thread-safe collection of metric families.

    Accessors are get-or-create: asking twice for the same name returns
    the same family (and validates that kind and label schema did not
    change). ``collect()`` freezes everything into plain data for the
    renderers.
    """

    #: Instrumented code paths may check this before doing any metric
    #: work (timing, ratio computation); the null registry sets False.
    enabled: bool = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Family accessors
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> object:
        """Get or create a counter; returns the bare :class:`Counter`
        when ``labels`` is empty, the :class:`MetricFamily` otherwise."""
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> object:
        """Get or create a gauge (see :meth:`counter` for the return)."""
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> object:
        """Get or create a histogram (see :meth:`counter` for the return)."""
        return self._family(name, "histogram", help, labels, buckets)

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> object:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, labels, buckets)
                self._families[name] = family
            elif family.kind != kind or family.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name} already registered as {family.kind}"
                    f"{family.label_names}, cannot re-register as "
                    f"{kind}{tuple(labels)}"
                )
        if not family.label_names:
            return family.labels()
        return family

    def families(self) -> list[MetricFamily]:
        """Every registered family, sorted by metric name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------
    def collect(self) -> list[dict[str, object]]:
        """Freeze all families into JSON-serializable plain data.

        Histogram bucket bounds are rendered as strings (``"0.005"``,
        ``"+Inf"``) because JSON has no infinity; empty histograms
        report 0.0 for every percentile.
        """
        out: list[dict[str, object]] = []
        for family in self.families():
            samples: list[dict[str, object]] = []
            for values, instrument in family.samples():
                labels = dict(zip(family.label_names, values))
                if isinstance(instrument, Histogram):
                    samples.append({
                        "labels": labels,
                        "count": instrument.count,
                        "sum": instrument.sum,
                        "buckets": [
                            [_format_bound(bound), count]
                            for bound, count in
                            instrument.cumulative_buckets()
                        ],
                        **instrument.percentiles(),
                    })
                else:
                    assert isinstance(instrument, (Counter, Gauge))
                    samples.append({
                        "labels": labels, "value": instrument.value,
                    })
            out.append({
                "name": family.name,
                "type": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "samples": samples,
            })
        return out


def _format_bound(bound: float) -> str:
    """Render a bucket bound the way Prometheus exposition does."""
    if math.isinf(bound):
        return "+Inf"
    return repr(bound)


# ----------------------------------------------------------------------
# The no-op substrate (default when observability is disabled)
# ----------------------------------------------------------------------
class _NullInstrument:
    """Shared no-op counter/gauge/histogram/family stand-in."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""

    def dec(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""

    def labels(self, **labels: str) -> "_NullInstrument":
        """Return the shared no-op instrument."""
        return self

    @property
    def value(self) -> float:
        """Always 0.0."""
        return 0.0


_NULL = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every accessor returns a shared no-op.

    Instrumented call sites check :attr:`MetricsRegistry.enabled` (or
    compare against ``None`` after resolving their instruments) and skip
    all metric work — including clock reads — when this registry is
    installed, so disabled observability costs nothing per item.
    """

    enabled = False

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> object:
        return _NULL

    def families(self) -> list[MetricFamily]:
        """Always empty."""
        return []

    def collect(self) -> list[dict[str, object]]:
        """Always empty."""
        return []


_DEFAULT_REGISTRY: MetricsRegistry = NullRegistry()
_DEFAULT_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (a no-op :class:`NullRegistry` unless
    observability was enabled with :func:`set_registry`)."""
    return _DEFAULT_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` process-wide; returns the previous one.

    Pass a fresh :class:`MetricsRegistry` to enable observability, or a
    :class:`NullRegistry` to disable it again::

        previous = set_registry(MetricsRegistry())
        try:
            ...  # instrumented run
        finally:
            set_registry(previous)
    """
    global _DEFAULT_REGISTRY
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(
            f"expected a MetricsRegistry, got {type(registry).__name__}"
        )
    with _DEFAULT_LOCK:
        previous = _DEFAULT_REGISTRY
        _DEFAULT_REGISTRY = registry
    return previous
