"""Observers that wire estimator/engine state into the metrics registry.

The substrate in :mod:`repro.obs.metrics` is generic; this module owns
the *metric catalog* for the library's hot layers (names, types and
labels are documented in ``docs/observability.md``):

- :class:`PipelineMetrics` — the ingest pipeline's counters, queue
  depth gauges and latency histograms;
- :class:`RecoveryMetrics` — the crash-recovery manager's save/retry/
  fallback/orphan counters, retained-generation gauge and durations
  (:mod:`repro.engine.recovery`);
- :class:`PoolObserver` — per-shard estimate gauges and the estimate
  skew of a :class:`~repro.engine.shards.ShardPool`;
- :class:`SMBObserver` — the paper's own adaptivity signals of one
  :class:`~repro.core.smb.SelfMorphingBitmap`: round index, fill ratio
  ``v/(m−rT)``, morph events and saturation. It satisfies the
  ``SMBMetricsSink`` protocol, so ``smb.attach_metrics(observer)``
  refreshes the gauges once per recorded plane (per chunk, never per
  item);
- :class:`ServerMetrics` — the cardinality service's per-verb request
  counters and latency histograms, error counters by code, connection
  and in-flight gauges, byte counters and the tenant-count gauge
  (:mod:`repro.serve.server`);
- :class:`ParallelMetrics` — per-worker gauges of the multiprocess
  shard backend (:class:`~repro.parallel.ProcessShardPool`): request
  ring backlog, batches/records applied and shared-memory footprint;
- :class:`WireMetrics` — compact sketch frame codec counters
  (:mod:`repro.wire`): frames encoded/decoded by codec, raw vs wire
  bytes (the compression ratio is their quotient) and codec latency;
- :class:`AggMetrics` — cross-node aggregation counters
  (:mod:`repro.agg`): sketches merged, incompatible pairs rejected and
  tree-reduction wall time.

Everything here is only ever constructed when the process-wide registry
is enabled; with the default :class:`~repro.obs.metrics.NullRegistry`
none of these objects exist and the instrumented code paths skip all
metric work.
"""

from __future__ import annotations

from repro.core.smb import SelfMorphingBitmap
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "AggMetrics",
    "ParallelMetrics",
    "PipelineMetrics",
    "PoolObserver",
    "RecoveryMetrics",
    "SERVE_VERBS",
    "SMBObserver",
    "ServerMetrics",
    "WireMetrics",
]

#: The serving layer's request verbs, in wire-constant order. Lives
#: here (not in ``repro.serve.protocol``) so the metric catalog never
#: imports the serving layer — ``repro.serve`` imports ``repro.obs``,
#: not the other way around.
SERVE_VERBS: tuple[str, ...] = (
    "record", "estimate", "stats", "checkpoint", "export", "merge_in",
)

#: Bucket bounds for queue/apply latencies (seconds): microseconds for a
#: sub-plane apply up to whole seconds of backpressure stall.
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class PipelineMetrics:
    """Instrument bundle used by :class:`~repro.engine.pipeline.IngestPipeline`.

    Resolves every pipeline metric once at construction so the hot path
    touches plain attributes (``submitted.inc(n)``) instead of registry
    lookups. Per-shard children are pre-resolved into lists indexed by
    shard number.
    """

    def __init__(self, registry: MetricsRegistry, num_shards: int) -> None:
        self.submitted = registry.counter(
            "repro_ingest_records_submitted_total",
            "Records successfully enqueued by IngestPipeline.submit",
        )
        self.dropped = registry.counter(
            "repro_ingest_records_dropped_total",
            "Records dropped because a shard worker had already failed",
        )
        self.batches_dropped = registry.counter(
            "repro_ingest_batches_dropped_total",
            "Sub-batches dropped because a shard worker had already failed",
        )
        depth = registry.gauge(
            "repro_ingest_queue_depth",
            "Sub-batches currently queued per shard",
            labels=("shard",),
        )
        apply_latency = registry.histogram(
            "repro_ingest_batch_apply_seconds",
            "Per-shard latency of applying one sub-plane",
            labels=("shard",),
            buckets=LATENCY_BUCKETS,
        )
        shards = [str(index) for index in range(num_shards)]
        self.queue_depth = [depth.labels(shard=s) for s in shards]
        self.apply_latency = [apply_latency.labels(shard=s) for s in shards]
        self.backpressure = registry.histogram(
            "repro_ingest_backpressure_wait_seconds",
            "Time the submit path blocked on a full shard queue",
            buckets=LATENCY_BUCKETS,
        )


class RecoveryMetrics:
    """Instrument bundle of :class:`~repro.engine.recovery.CheckpointManager`.

    One instance per manager, constructed only when the process-wide
    registry is enabled (the NullRegistry path never builds it). All
    instruments are touched per save/load/sweep — recovery has no
    per-item work at all.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.saves = registry.counter(
            "repro_recovery_saves_total",
            "Checkpoint generations successfully written and published",
        )
        self.retries = registry.counter(
            "repro_recovery_retries_total",
            "Transient checkpoint I/O failures that were retried",
        )
        self.fallbacks = registry.counter(
            "repro_recovery_fallbacks_total",
            "Torn/unreadable generations skipped by load_latest",
        )
        self.orphans_removed = registry.counter(
            "repro_recovery_orphans_removed_total",
            "Stale .checkpoint-* temp files deleted by the orphan sweep",
        )
        self.pruned = registry.counter(
            "repro_recovery_generations_pruned_total",
            "Old generations deleted by keep-N rotation",
        )
        self.generations = registry.gauge(
            "repro_recovery_generations",
            "Checkpoint generations currently retained",
        )
        self.save_seconds = registry.histogram(
            "repro_recovery_save_seconds",
            "Wall time of one CheckpointManager.save (incl. rotation)",
        )
        self.load_seconds = registry.histogram(
            "repro_recovery_load_seconds",
            "Wall time of one CheckpointManager.load_latest",
        )


class ServerMetrics:
    """Instrument bundle of the cardinality service.

    Per-verb children are pre-resolved into dicts keyed by the verb
    names in :data:`SERVE_VERBS`, so the connection hot path does plain
    ``requests["estimate"].inc()`` attribute work — no registry or
    label lookups per frame. Error counters are resolved lazily by
    numeric code (errors are rare; a dict-miss there is fine).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        requests = registry.counter(
            "repro_serve_requests_total",
            "Requests decoded, by verb",
            labels=("verb",),
        )
        latency = registry.histogram(
            "repro_serve_request_seconds",
            "Request latency from frame decode to response write, by verb",
            labels=("verb",),
            buckets=LATENCY_BUCKETS,
        )
        self.requests = {verb: requests.labels(verb=verb) for verb in SERVE_VERBS}
        self.latency = {verb: latency.labels(verb=verb) for verb in SERVE_VERBS}
        self._errors = registry.counter(
            "repro_serve_errors_total",
            "Error frames sent, by protocol error code",
            labels=("code",),
        )
        self.in_flight = registry.gauge(
            "repro_serve_in_flight",
            "Requests currently being served",
        )
        self.connections = registry.gauge(
            "repro_serve_connections",
            "Client connections currently open",
        )
        self.connections_total = registry.counter(
            "repro_serve_connections_total",
            "Client connections accepted since start",
        )
        self.bytes_read = registry.counter(
            "repro_serve_bytes_read_total",
            "Request bytes received from clients",
        )
        self.bytes_written = registry.counter(
            "repro_serve_bytes_written_total",
            "Response bytes written to clients",
        )
        self.tenants = registry.gauge(
            "repro_serve_tenants",
            "Tenants currently materialized in the registry",
        )

    def error(self, code: int) -> None:
        """Count one error frame by protocol error code."""
        self._errors.labels(code=str(code)).inc()


#: Wire codec names, in wire-constant order (0 = raw). Lives here (not
#: in ``repro.wire.frame``) for the same reason as :data:`SERVE_VERBS`:
#: the metric catalog never imports the layers it instruments.
WIRE_CODECS: tuple[str, ...] = ("raw", "huffman", "zrle")


class WireMetrics:
    """Instrument bundle of the compact sketch frame codec.

    Per-codec children are pre-resolved into dicts keyed by the codec
    names in :data:`WIRE_CODECS`; encode/decode paths do plain
    ``encoded["huffman"].inc()`` work. Raw and wire byte counters run
    alongside so the fleet-wide compression ratio is one quotient away.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        encoded = registry.counter(
            "repro_wire_frames_encoded_total",
            "Sketch frames encoded, by winning codec",
            labels=("codec",),
        )
        decoded = registry.counter(
            "repro_wire_frames_decoded_total",
            "Sketch frames decoded, by codec",
            labels=("codec",),
        )
        self.encoded = {codec: encoded.labels(codec=codec) for codec in WIRE_CODECS}
        self.decoded = {codec: decoded.labels(codec=codec) for codec in WIRE_CODECS}
        self.decode_errors = registry.counter(
            "repro_wire_decode_errors_total",
            "Frames rejected by decode_sketch (bad magic/CRC/payload)",
        )
        self.raw_bytes = registry.counter(
            "repro_wire_raw_bytes_total",
            "Uncompressed to_bytes payload bytes passed through the codec",
        )
        self.wire_bytes = registry.counter(
            "repro_wire_frame_bytes_total",
            "Encoded frame bytes produced (header + blob + checksum)",
        )
        self.encode_seconds = registry.histogram(
            "repro_wire_encode_seconds",
            "Wall time of one encode_sketch call",
            buckets=LATENCY_BUCKETS,
        )
        self.decode_seconds = registry.histogram(
            "repro_wire_decode_seconds",
            "Wall time of one decode_sketch call",
            buckets=LATENCY_BUCKETS,
        )


class AggMetrics:
    """Instrument bundle of the cross-node aggregation layer.

    Constructed per :func:`repro.agg.tree_reduce` call site when the
    registry is enabled; reductions are rare control-plane work, so
    nothing here is hot.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.merges = registry.counter(
            "repro_agg_merges_total",
            "Pairwise sketch merges performed by tree_reduce",
        )
        self.incompatible = registry.counter(
            "repro_agg_incompatible_total",
            "Reductions aborted because operands were not merge-compatible",
        )
        self.reduced = registry.counter(
            "repro_agg_reductions_total",
            "tree_reduce calls completed",
        )
        self.inputs = registry.histogram(
            "repro_agg_reduce_inputs",
            "Operand count per tree_reduce call",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        )
        self.reduce_seconds = registry.histogram(
            "repro_agg_reduce_seconds",
            "Wall time of one tree_reduce call",
            buckets=LATENCY_BUCKETS,
        )


class SMBObserver:
    """Mirror one SMB's adaptivity signals into gauges and a counter.

    Satisfies the ``SMBMetricsSink`` protocol of
    :mod:`repro.core.smb`: attach with ``smb.attach_metrics(observer)``
    and the estimator calls :meth:`update` once per recorded plane.
    Morph events are derived from the round index advancing between
    updates, so attaching after a restore does not re-count historical
    morphs.
    """

    def __init__(self, registry: MetricsRegistry, shard: str = "0") -> None:
        labels = ("shard",)
        self._round = registry.gauge(
            "repro_smb_round", "Current SMB round index r", labels,
        ).labels(shard=shard)
        self._fill = registry.gauge(
            "repro_smb_fill_ratio",
            "SMB logical fill ratio v / (m - r*T)", labels,
        ).labels(shard=shard)
        self._saturated = registry.gauge(
            "repro_smb_saturated",
            "1 once the SMB bitmap is completely full", labels,
        ).labels(shard=shard)
        self._morphs = registry.counter(
            "repro_smb_morphs_total",
            "SMB morph events observed (round advances)", labels,
        ).labels(shard=shard)
        self._last_round: int | None = None

    def update(self, smb: SelfMorphingBitmap) -> None:
        """Refresh the gauges from the estimator's current counters."""
        current_round = smb.r
        if self._last_round is not None and current_round > self._last_round:
            self._morphs.inc(current_round - self._last_round)
        self._last_round = current_round
        self._round.set(current_round)
        self._fill.set(smb.fill_ratio)
        self._saturated.set(1.0 if smb.saturated else 0.0)


class PoolObserver:
    """Per-shard estimate gauges and skew for a shard pool.

    On construction, every :class:`~repro.core.smb.SelfMorphingBitmap`
    shard additionally gets an :class:`SMBObserver` attached (pass
    ``attach_smb=False`` to opt out), so the paper's adaptivity signals
    stream out per shard during ingestion. :meth:`update` is on-demand
    — call it at safe points (after a drain, before a snapshot); shard
    ``query()`` is cheap but not free, so it is not run per batch.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        pool: object,
        attach_smb: bool = True,
    ) -> None:
        self.pool = pool
        estimate = registry.gauge(
            "repro_pool_shard_estimate",
            "Per-shard cardinality estimate", labels=("shard",),
        )
        num_shards = len(pool.shards)  # type: ignore[attr-defined]
        self._estimates = [
            estimate.labels(shard=str(index)) for index in range(num_shards)
        ]
        self._skew = registry.gauge(
            "repro_pool_estimate_skew",
            "max/mean - 1 across per-shard estimates (0 = perfectly even)",
        )
        self._smb_sinks: list[tuple[SelfMorphingBitmap, SMBObserver]] = []
        if attach_smb:
            for index, shard in enumerate(pool.shards):  # type: ignore[attr-defined]
                if isinstance(shard, SelfMorphingBitmap):
                    sink = SMBObserver(registry, shard=str(index))
                    shard.attach_metrics(sink)
                    self._smb_sinks.append((shard, sink))

    def update(self) -> None:
        """Refresh estimate/skew gauges (and any attached SMB gauges)."""
        estimates = self.pool.shard_estimates()  # type: ignore[attr-defined]
        for gauge, value in zip(self._estimates, estimates):
            gauge.set(value)
        mean = sum(estimates) / len(estimates) if estimates else 0.0
        self._skew.set(max(estimates) / mean - 1.0 if mean > 0 else 0.0)
        for shard, sink in self._smb_sinks:
            sink.update(shard)


class ParallelMetrics:
    """Per-worker gauges of the multiprocess shard backend.

    Resolves one child per worker index at construction (workers never
    change over a backend's lifetime), so :meth:`update` does plain
    ``gauge.set`` attribute work. Driven from safe points — after a
    drain or a checkpoint sync — by feeding it the backend's
    ``worker_metrics()`` snapshot; nothing here runs per batch.
    """

    def __init__(self, registry: MetricsRegistry, num_workers: int) -> None:
        backlog = registry.gauge(
            "repro_parallel_ring_backlog_bytes",
            "Unread request bytes queued in each worker's ring",
            labels=("worker",),
        )
        batches = registry.gauge(
            "repro_parallel_batches_applied",
            "Batches each worker has applied to its shards",
            labels=("worker",),
        )
        records = registry.gauge(
            "repro_parallel_records_applied",
            "Records each worker has applied to its shards",
            labels=("worker",),
        )
        shm = registry.gauge(
            "repro_parallel_shm_bytes",
            "Shared-memory bytes owned per worker (ring + arena)",
            labels=("worker",),
        )
        alive = registry.gauge(
            "repro_parallel_worker_alive",
            "1 while the worker process is running",
            labels=("worker",),
        )
        workers = [str(index) for index in range(num_workers)]
        self._backlog = [backlog.labels(worker=w) for w in workers]
        self._batches = [batches.labels(worker=w) for w in workers]
        self._records = [records.labels(worker=w) for w in workers]
        self._shm = [shm.labels(worker=w) for w in workers]
        self._alive = [alive.labels(worker=w) for w in workers]

    def update(self, backend: object) -> None:
        """Refresh every per-worker gauge from the backend's snapshot."""
        for row in backend.worker_metrics():  # type: ignore[attr-defined]
            index = int(row["worker"])
            self._backlog[index].set(float(row["ring_backlog_bytes"]))
            self._batches[index].set(float(row["batches_applied"]))
            self._records[index].set(float(row["records_applied"]))
            self._shm[index].set(float(row["shm_bytes"]))
            self._alive[index].set(1.0 if row["alive"] else 0.0)
