"""The ``repro stats`` subcommand: inspect a metrics snapshot.

Reads a JSON snapshot written by ``repro engine --metrics-out`` (or the
periodic snapshotter) and renders it as a human-readable table, as
Prometheus exposition text, or re-emits the JSON::

    repro stats metrics.json                  # aligned table
    repro stats metrics.json --format prom    # Prometheus text
    repro stats metrics.json --format json    # normalized JSON

Dispatched from the main :mod:`repro.cli` entry point.
"""

from __future__ import annotations

import argparse
import json

from repro.obs.render import render_prometheus

__all__ = ["build_parser", "stats_main"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro stats`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description=(
            "Render a repro.obs metrics snapshot (as written by "
            "'repro engine --metrics-out FILE')."
        ),
    )
    parser.add_argument(
        "snapshot", metavar="FILE",
        help="JSON metrics snapshot to render",
    )
    parser.add_argument(
        "--format", choices=("table", "prom", "json"), default="table",
        help="output format (default: table)",
    )
    return parser


def _sample_rows(family: dict) -> list[list[object]]:
    rows: list[list[object]] = []
    name = family["name"]
    for sample in family["samples"]:
        labels = sample.get("labels", {})
        label_text = ",".join(f"{k}={v}" for k, v in labels.items())
        if family["type"] == "histogram":
            rows.append([
                name, family["type"], label_text,
                f"count={sample['count']} sum={round(sample['sum'], 6)} "
                f"p50={sample['p50']:.3g} p90={sample['p90']:.3g} "
                f"p99={sample['p99']:.3g}",
            ])
        else:
            rows.append([name, family["type"], label_text, sample["value"]])
    return rows


def stats_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro stats``; returns the process exit code."""
    from repro.bench.reporting import format_table

    args = build_parser().parse_args(argv)
    try:
        with open(args.snapshot, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read snapshot {args.snapshot}: {exc}")
    if not isinstance(document, dict) or "metrics" not in document:
        raise SystemExit(
            f"{args.snapshot} is not a repro.obs metrics snapshot "
            "(missing 'metrics')"
        )

    if args.format == "json":
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    if args.format == "prom":
        print(render_prometheus(document), end="")
        return 0

    rows: list[list[object]] = []
    for family in document["metrics"]:
        rows.extend(_sample_rows(family))
    title = f"metrics snapshot: {args.snapshot}"
    if rows:
        print(format_table(["metric", "type", "labels", "value"], rows,
                           title=title))
    else:
        print(f"{title}\n(no metrics recorded)")
    run = document.get("run")
    if isinstance(run, dict) and run:
        run_rows = [[key, run[key]] for key in sorted(run)]
        print()
        print(format_table(["run fact", "value"], run_rows, title="run"))
    return 0
