"""Periodic JSON snapshotting for long-running ingests.

:class:`PeriodicSnapshotter` runs a daemon thread that writes a JSON
snapshot of a registry to a fixed path every ``interval`` seconds (and
once more on :meth:`~PeriodicSnapshotter.stop`, so the final state is
always on disk). Writes are atomic (``os.replace``), so an external
observer tailing the file never sees a torn document.

The thread paces itself with ``threading.Event.wait`` — a relative,
monotonic timeout — and reads no wall clock, keeping the snapshot
content deterministic for seeded runs (timing histograms aside).
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.render import write_snapshot

__all__ = ["PeriodicSnapshotter"]


class PeriodicSnapshotter:
    """Write registry snapshots to ``path`` every ``interval`` seconds.

    Parameters
    ----------
    registry:
        The registry to snapshot.
    path:
        Destination JSON file, overwritten atomically each tick.
    interval:
        Seconds between snapshots (> 0).
    refresh:
        Optional callback invoked before each write — e.g.
        :meth:`~repro.obs.instrument.PoolObserver.update` — so gauges
        that are only set on demand reflect the moment of the snapshot.
    run:
        Optional run-level facts forwarded into every snapshot's
        ``run`` section.

    Usable as a context manager::

        with PeriodicSnapshotter(registry, "metrics.json", 5.0):
            ...  # long ingest
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str | os.PathLike,
        interval: float = 5.0,
        refresh: Callable[[], None] | None = None,
        run: Mapping[str, object] | None = None,
    ) -> None:
        if not interval > 0:
            raise ValueError(f"interval must be > 0 seconds, got {interval}")
        self.registry = registry
        self.path = os.fspath(path)
        self.interval = float(interval)
        self.refresh = refresh
        self.run = run
        self.snapshots_written = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "PeriodicSnapshotter":
        """Start the snapshot thread (idempotent); returns ``self``."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="obs-snapshotter", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and write one final snapshot."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None
        self._write()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._write()

    def _write(self) -> None:
        if self.refresh is not None:
            self.refresh()
        write_snapshot(self.registry, self.path, run=self.run)
        self.snapshots_written += 1

    def __enter__(self) -> "PeriodicSnapshotter":
        """Enter: start the snapshot thread."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Exit: stop the thread and flush a final snapshot."""
        self.stop()
