"""Observability: metrics substrate, instrumentation and exposition.

``repro.obs`` is a lightweight, dependency-free metrics layer:

- :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` primitives, labeled families, and the
  process-wide :class:`MetricsRegistry` (a no-op :class:`NullRegistry`
  by default — instrumentation is zero-cost until
  :func:`set_registry` enables it);
- :mod:`repro.obs.instrument` — the metric catalog for the hot layers
  (pipeline, shard pool, SMB adaptivity signals);
- :mod:`repro.obs.render` — Prometheus text exposition and JSON
  snapshots;
- :mod:`repro.obs.snapshotter` — a periodic snapshot thread for long
  ingests;
- :mod:`repro.obs.cli` — the ``repro stats`` subcommand.

See ``docs/observability.md`` for the metric catalog and the overhead
policy (enabled instrumentation may only do per-chunk work, never
per-item — statically enforced by ``repro analyze``).
"""

from repro.obs.instrument import (
    PipelineMetrics,
    PoolObserver,
    RecoveryMetrics,
    SMBObserver,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
)
from repro.obs.render import (
    parse_prometheus,
    render_prometheus,
    snapshot,
    write_snapshot,
)
from repro.obs.snapshotter import PeriodicSnapshotter

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "PeriodicSnapshotter",
    "PipelineMetrics",
    "PoolObserver",
    "RecoveryMetrics",
    "SMBObserver",
    "get_registry",
    "parse_prometheus",
    "render_prometheus",
    "set_registry",
    "snapshot",
    "write_snapshot",
]
