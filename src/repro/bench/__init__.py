"""Experiment harness regenerating every table and figure of the paper.

See DESIGN.md §3 for the experiment index; ``python -m repro <exp-id>``
runs any of them from the command line.
"""

from repro.bench.accuracy import accuracy_sweep, select_columns
from repro.bench.caida import (
    absolute_error_by_group,
    query_throughput,
    recording_throughput,
    smb_throughput_by_range,
)
from repro.bench.overheads import overhead_table
from repro.bench.reporting import format_series, format_table
from repro.bench.runner import (
    ALL_ESTIMATORS,
    PAPER_ESTIMATORS,
    make_estimator,
    repro_scale,
)
from repro.bench.throughput import (
    query_throughput_vs_cardinality,
    query_throughput_vs_memory,
    recording_throughput_online,
    recording_throughput_table,
)

__all__ = [
    "ALL_ESTIMATORS",
    "PAPER_ESTIMATORS",
    "absolute_error_by_group",
    "accuracy_sweep",
    "format_series",
    "format_table",
    "make_estimator",
    "overhead_table",
    "query_throughput",
    "query_throughput_vs_cardinality",
    "query_throughput_vs_memory",
    "recording_throughput",
    "recording_throughput_online",
    "recording_throughput_table",
    "repro_scale",
    "select_columns",
    "smb_throughput_by_range",
]
