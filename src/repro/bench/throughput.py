"""Throughput experiments: Tables IV, V, VI and VII of the paper.

Absolute numbers are Python/NumPy, not the paper's C++ testbed; the
reproduced claims are the *shapes* (see DESIGN.md §4):

- Table IV — SMB's recording throughput grows with stream cardinality
  because Step 1 drops a growing fraction of arrivals before any memory
  access, while the baselines stay flat;
- Table V — FM/HLL++/HLL-TailC query time grows with memory (they scan
  all registers) while MRB (k counters) and SMB (two counters) do not;
- Table VI — SMB dominates query throughput at every cardinality;
- Table VII — only MRB's query throughput depends on n (fewer counters
  to sum once the base level rises).
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.runner import (
    PAPER_ESTIMATORS,
    make_estimator,
    mdps,
    repro_scale,
    time_call,
    time_recording,
)
from repro.streams import distinct_items, stream_with_duplicates

#: Default cardinality grid of Table IV (paper: 10^4 … 10^8). The top
#: decade is scaled by REPRO_SCALE; at scale 1.0 the full grid runs.
TABLE4_CARDINALITIES = (10_000, 100_000, 1_000_000, 10_000_000, 100_000_000)

#: Memory budgets of Table V.
TABLE5_MEMORIES = (10_000, 5_000, 2_500, 1_000)

#: Cardinality grid of Tables VI/VII.
TABLE6_CARDINALITIES = (10_000, 100_000, 1_000_000, 10_000_000)


def _scaled(cardinalities: Sequence[int], cap_scale: float) -> list[int]:
    cap = int(100_000_000 * cap_scale)
    return [n for n in cardinalities if n <= max(cap, 10_000)]


def recording_throughput_table(
    memory_bits: int = 5_000,
    cardinalities: Sequence[int] | None = None,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    seed: int = 0,
    path: str = "batch",
) -> list[dict[str, object]]:
    """Table IV: recording throughput (Mdps) per estimator and n.

    Streams are distinct-item streams (duplicates cannot slow any of the
    estimators down — they all hash every arrival — so distinct items
    are the conservative workload).

    ``path`` selects the execution path: ``"batch"`` (vectorized, the
    default) or ``"scalar"`` (a per-item loop, the paper's deployment
    model; the cardinality grid is capped because pure-Python loops are
    ~50× slower).
    """
    if path not in ("batch", "scalar"):
        raise ValueError(f"path must be 'batch' or 'scalar', got {path!r}")
    grid = list(cardinalities or _scaled(TABLE4_CARDINALITIES, repro_scale(0.01)))
    if path == "scalar":
        grid = [min(n, 200_000) for n in grid]
        grid = sorted(set(grid))
    rows = []
    for n in grid:
        items = distinct_items(n, seed=seed + n % 97)
        row: dict[str, object] = {"cardinality": n}
        for name in estimators:
            design = max(n, 1_000_000)
            estimator = make_estimator(name, memory_bits, design, seed)
            if path == "batch":
                warmup = make_estimator(name, memory_bits, design, seed + 1)
                seconds = time_recording(estimator, items, warmup=warmup)
            else:
                seconds = _time_scalar_recording(estimator, items)
            row[name] = round(mdps(n, seconds), 3)
        rows.append(row)
    return rows


def _time_scalar_recording(estimator, items) -> float:
    import time

    pairs = items.tolist()
    start = time.perf_counter()
    record = estimator.record
    for item in pairs:
        record(item)
    return time.perf_counter() - start


def query_throughput_vs_memory(
    memories: Sequence[int] = TABLE5_MEMORIES,
    cardinality: int = 100_000,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Table V: query throughput (queries/s) per estimator and memory."""
    items = distinct_items(cardinality, seed=seed + 1)
    rows = []
    for memory_bits in memories:
        row: dict[str, object] = {"memory_bits": memory_bits}
        for name in estimators:
            estimator = make_estimator(name, memory_bits, 1_000_000, seed)
            estimator.record_many(items)
            seconds = time_call(estimator.query)
            row[name] = round(1.0 / seconds, 1)
        rows.append(row)
    return rows


def query_throughput_vs_cardinality(
    memory_bits: int = 5_000,
    cardinalities: Sequence[int] | None = None,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Tables VI/VII: query throughput per estimator and cardinality."""
    grid = cardinalities or _scaled(TABLE6_CARDINALITIES, repro_scale(0.1))
    rows = []
    for n in grid:
        items = distinct_items(n, seed=seed + 2)
        row: dict[str, object] = {"cardinality": n}
        for name in estimators:
            estimator = make_estimator(name, memory_bits, 1_000_000, seed)
            estimator.record_many(items)
            seconds = time_call(estimator.query)
            row[name] = round(1.0 / seconds, 1)
        rows.append(row)
    return rows


def recording_throughput_online(
    memory_bits: int = 5_000,
    cardinality: int = 1_000_000,
    length_factor: float = 1.5,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    seed: int = 0,
) -> dict[str, float]:
    """Single-stream throughput on a duplicated (realistic) stream.

    Complements Table IV with a workload where items repeat, matching
    the paper's setup where the recorded stream contains duplicates.
    """
    stream = stream_with_duplicates(
        cardinality, int(cardinality * length_factor), seed=seed + 3
    )
    out = {}
    for name in estimators:
        estimator = make_estimator(name, memory_bits, cardinality, seed)
        seconds = time_recording(estimator, stream)
        out[name] = round(mdps(stream.size, seconds), 3)
    return out
