"""Experiment plumbing: estimator registry, workload scaling, timing.

Every experiment builds its estimators through :func:`make_estimator`
with the paper's configuration rules:

- **MRB** is dimensioned by Table III (``mrb_parameters``);
- **SMB** uses the optimal threshold of §IV-B (``optimal_threshold``);
- **FM**, **HLL++**, **HLL-TailC** (and the extra baselines) divide the
  memory budget into their registers as §II-B describes.

Workload sizes honour the ``REPRO_SCALE`` environment variable so the
full suite runs in minutes by default and at paper scale on request.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Sequence

import numpy as np

from repro.core.smb import SelfMorphingBitmap
from repro.core.tuning import mrb_parameters, optimal_threshold
from repro.estimators import (
    Bitmap,
    CardinalityEstimator,
    FMSketch,
    HyperLogLog,
    HyperLogLogPlusPlus,
    HyperLogLogTailCut,
    HyperLogLogTailCutPlus,
    KMinValues,
    LogLog,
    MultiResolutionBitmap,
    SuperLogLog,
)

#: The five estimators every table/figure in the paper compares.
PAPER_ESTIMATORS = ("MRB", "FM", "HLL++", "HLL-TailC", "SMB")

#: Everything the library ships, for extended experiments. (Refined HLL
#: is excluded: it needs a labelled calibration stream, the online
#: impracticality the paper describes.)
ALL_ESTIMATORS = (
    "Bitmap", "MRB", "FM", "LogLog", "SuperLogLog",
    "HLL", "HLL++", "HLL-TailC", "HLL-TailC+", "KMV", "SMB",
)


def repro_scale(default: float = 1.0) -> float:
    """Workload scale factor from the REPRO_SCALE environment variable."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    scale = float(raw)
    if scale <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {raw!r}")
    return scale


def make_estimator(
    name: str,
    memory_bits: int,
    expected_cardinality: int = 1_000_000,
    seed: int = 0,
) -> CardinalityEstimator:
    """Build an estimator by display name with the paper's sizing rules."""
    if name == "Bitmap":
        return Bitmap(memory_bits, seed=seed)
    if name == "MRB":
        params = mrb_parameters(memory_bits, expected_cardinality)
        return MultiResolutionBitmap(
            params.component_bits, params.num_components, seed=seed
        )
    if name == "FM":
        return FMSketch(memory_bits, seed=seed)
    if name == "LogLog":
        return LogLog(memory_bits, seed=seed)
    if name == "SuperLogLog":
        return SuperLogLog(memory_bits, seed=seed)
    if name == "HLL":
        return HyperLogLog(memory_bits, seed=seed)
    if name == "HLL++":
        return HyperLogLogPlusPlus(memory_bits, seed=seed)
    if name == "HLL-TailC":
        return HyperLogLogTailCut(memory_bits, seed=seed)
    if name == "HLL-TailC+":
        return HyperLogLogTailCutPlus(memory_bits, seed=seed)
    if name == "KMV":
        return KMinValues.for_memory(memory_bits, seed=seed)
    if name == "SMB":
        threshold = optimal_threshold(memory_bits, expected_cardinality)
        return SelfMorphingBitmap(memory_bits, threshold=threshold, seed=seed)
    raise ValueError(
        f"unknown estimator {name!r}; choose from {ALL_ESTIMATORS}"
    )


def time_call(fn: Callable[[], object], min_seconds: float = 0.05) -> float:
    """Seconds per call of ``fn``, repeated until ``min_seconds`` elapsed."""
    # Warm-up call (JIT-free Python, but populates caches/allocations).
    fn()
    calls = 0
    start = time.perf_counter()
    elapsed = 0.0
    while elapsed < min_seconds:
        fn()
        calls += 1
        elapsed = time.perf_counter() - start
    return elapsed / calls


def time_recording(
    estimator: CardinalityEstimator,
    items: np.ndarray,
    warmup: CardinalityEstimator | None = None,
) -> float:
    """Seconds to record ``items`` through the batch path (one pass).

    When a ``warmup`` twin is supplied, a slice of the workload is
    recorded into it first so NumPy's one-time ufunc dispatch setup does
    not bill the measured estimator (it costs ~15ms, which would swamp
    small workloads).
    """
    if warmup is not None:
        warmup.record_many(items[: min(items.size, 4096)])
    start = time.perf_counter()
    estimator.record_many(items)
    return time.perf_counter() - start


def mdps(items: int, seconds: float) -> float:
    """Million data items per second (the paper's throughput unit)."""
    if seconds <= 0:
        return float("inf")
    return items / seconds / 1e6


def geometric_cardinalities(
    low: int, high: int, points: int
) -> Sequence[int]:
    """A log-spaced cardinality grid, deduplicated and sorted."""
    grid = np.geomspace(low, high, points)
    return sorted({int(round(x)) for x in grid})
