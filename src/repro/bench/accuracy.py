"""Accuracy and bias experiments: Figures 6, 7 and 8 of the paper.

Each figure point averages ``trials`` independent streams of the same
cardinality (the paper uses 100; ``REPRO_SCALE`` scales the default).
Streams use distinct items only: by the duplicate-insensitivity
contract (Theorem 2 and its analogues, enforced in the test suite)
duplicates cannot change any estimator's state, so they would only
burn time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.runner import (
    PAPER_ESTIMATORS,
    geometric_cardinalities,
    make_estimator,
    repro_scale,
)
from repro.streams import distinct_items

#: Paper's per-point trial count.
PAPER_TRIALS = 100


def default_cardinalities(points: int = 11) -> Sequence[int]:
    """The figures' x-axis: 10^4 … 10^6 (log-spaced)."""
    return geometric_cardinalities(10_000, 1_000_000, points)


def accuracy_sweep(
    memory_bits: int,
    cardinalities: Sequence[int] | None = None,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Measure error and bias per (estimator, cardinality).

    Returns one row per cardinality with, per estimator, the mean
    absolute error, mean relative error, and relative bias across
    trials — the quantities plotted in Figs. 6-8.
    """
    grid = list(cardinalities or default_cardinalities())
    runs = trials if trials is not None else max(3, int(PAPER_TRIALS * repro_scale(0.1)))
    rows = []
    for n in grid:
        row: dict[str, object] = {"cardinality": n}
        for name in estimators:
            estimates = np.empty(runs, dtype=np.float64)
            for trial in range(runs):
                estimator = make_estimator(
                    name, memory_bits, 1_000_000, seed=seed + trial
                )
                estimator.record_many(
                    distinct_items(n, seed=(seed + trial) * 2_654_435_761 + n)
                )
                estimates[trial] = estimator.query()
            row[f"{name}/abs_error"] = float(np.mean(np.abs(estimates - n)))
            row[f"{name}/rel_error"] = float(np.mean(np.abs(estimates - n) / n))
            row[f"{name}/bias"] = float(np.mean(estimates / n - 1.0))
        rows.append(row)
    return rows


def select_columns(
    rows: list[dict[str, object]],
    metric: str,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
) -> tuple[list[object], dict[str, list[object]]]:
    """Project sweep rows into (x_values, {estimator: series}) form."""
    x_values = [row["cardinality"] for row in rows]
    series = {
        name: [row[f"{name}/{metric}"] for row in rows] for name in estimators
    }
    return x_values, series
