"""CAIDA-trace experiments: Tables VIII, IX, X and Figure 9 (§V-F).

All four run on the synthetic CAIDA-like trace (see
``repro.streams.trace`` and DESIGN.md §5 for the substitution
rationale). Each data stream gets its own estimator, exactly as the
paper deploys one cardinality estimator per destination address.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.bench.runner import (
    PAPER_ESTIMATORS,
    make_estimator,
    mdps,
    repro_scale,
    time_call,
)
from repro.streams import SyntheticTrace, TraceConfig

#: Cardinality buckets of Table VIII's SMB breakdown.
RANGE_BUCKETS = ((1, 100), (100, 1_000), (1_000, 10_000), (10_000, 10**9))

#: Memory budgets of Table X / Figure 9.
CAIDA_MEMORIES = (1_000, 2_500, 5_000, 10_000)

#: The paper provisions per-stream estimators for the largest stream.
TRACE_DESIGN_CARDINALITY = 80_000


def default_trace(seed: int = 0) -> SyntheticTrace:
    """The CAIDA-like trace at the REPRO_SCALE workload size.

    Stream and packet counts scale linearly with REPRO_SCALE; the
    maximum cardinality scales as the cube root so that a scaled-down
    trace still contains a usable population of >1000-item streams for
    Figure 9 (the rank-size law makes large streams scarce).
    """
    scale = repro_scale(0.002)
    return SyntheticTrace(
        TraceConfig(
            num_streams=max(10, int(400_000 * scale)),
            total_packets=max(10_000, int(200_000_000 * scale)),
            max_cardinality=max(2_000, min(80_000, int(80_000 * scale ** (1 / 3)))),
            seed=seed,
        )
    )


def materialize_streams(
    trace: SyntheticTrace, indices: Sequence[int] | None = None
) -> dict[int, np.ndarray]:
    """Generate (once) and cache the packet arrays of the given streams.

    The trace is lazily generated; experiments that replay the same
    streams for several estimators materialize them first so workload
    generation does not pollute (or repeat inside) the timed region.
    """
    wanted = range(trace.num_streams) if indices is None else indices
    return {int(index): trace.stream_items(int(index)) for index in wanted}


def recording_throughput(
    trace: SyntheticTrace | None = None,
    memory_bits: int = 5_000,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    seed: int = 0,
    streams: dict[int, np.ndarray] | None = None,
) -> dict[str, float]:
    """Table VIII (top): overall recording throughput (Mdps) per estimator."""
    trace = trace or default_trace(seed)
    streams = streams if streams is not None else materialize_streams(trace)
    out = {}
    for name in estimators:
        # Warm NumPy's one-time ufunc setup outside the timed region.
        make_estimator(name, memory_bits, TRACE_DESIGN_CARDINALITY, seed).record_many(
            next(iter(streams.values()))
        )
        total_items = 0
        total_seconds = 0.0
        for items in streams.values():
            estimator = make_estimator(
                name, memory_bits, TRACE_DESIGN_CARDINALITY, seed
            )
            start = time.perf_counter()
            estimator.record_many(items)
            total_seconds += time.perf_counter() - start
            total_items += items.size
        out[name] = round(mdps(total_items, total_seconds), 3)
    return out


def smb_throughput_by_range(
    trace: SyntheticTrace | None = None,
    memory_bits: int = 5_000,
    seed: int = 0,
    streams: dict[int, np.ndarray] | None = None,
) -> list[dict[str, object]]:
    """Table VIII (bottom): SMB recording throughput per cardinality range."""
    trace = trace or default_trace(seed)
    rows = []
    for low, high in RANGE_BUCKETS:
        indices = trace.streams_in_range(low, high - 1)
        if indices.size == 0:
            rows.append({"range": f"[{low}, {high})", "streams": 0, "SMB": None})
            continue
        total_items = 0
        total_seconds = 0.0
        for index in indices.tolist():
            if streams is not None and index in streams:
                items = streams[index]
            else:
                items = trace.stream_items(index)
            estimator = make_estimator(
                "SMB", memory_bits, TRACE_DESIGN_CARDINALITY, seed
            )
            start = time.perf_counter()
            estimator.record_many(items)
            total_seconds += time.perf_counter() - start
            total_items += items.size
        rows.append(
            {
                "range": f"[{low}, {high})",
                "streams": int(indices.size),
                "SMB": round(mdps(total_items, total_seconds), 3),
            }
        )
    return rows


def query_throughput(
    trace: SyntheticTrace | None = None,
    memory_bits: int = 5_000,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    sample_streams: int = 20,
    seed: int = 0,
) -> dict[str, float]:
    """Table IX: query throughput (queries/s) averaged over trace streams."""
    trace = trace or default_trace(seed)
    rng = np.random.default_rng(seed)
    count = min(sample_streams, trace.num_streams)
    sampled = rng.choice(trace.num_streams, size=count, replace=False)
    out = {}
    for name in estimators:
        per_query = []
        for index in sampled.tolist():
            estimator = make_estimator(
                name, memory_bits, TRACE_DESIGN_CARDINALITY, seed
            )
            estimator.record_many(trace.stream_items(index))
            per_query.append(time_call(estimator.query, min_seconds=0.01))
        out[name] = round(1.0 / float(np.mean(per_query)), 1)
    return out


def absolute_error_by_group(
    trace: SyntheticTrace | None = None,
    memories: Sequence[int] = CAIDA_MEMORIES,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    split: int = 1_000,
    max_small_streams: int = 500,
    large_trials: int = 5,
    seed: int = 0,
) -> tuple[list[dict[str, object]], list[dict[str, object]]]:
    """Tables X and Figure 9: average absolute error per memory budget.

    Streams are split at ``split`` (the paper uses 1000): the small
    group (Table X — every estimator is near-exact there) and the large
    group (Figure 9 — where the estimators separate). Small streams are
    subsampled to ``max_small_streams`` for speed; the large group is
    always evaluated in full and additionally averaged over
    ``large_trials`` estimator seeds, because a scaled-down trace has
    far fewer large streams than the paper's 400k-stream original.
    """
    trace = trace or default_trace(seed)
    rng = np.random.default_rng(seed + 1)
    small = trace.streams_in_range(1, split)
    if small.size > max_small_streams:
        small = rng.choice(small, size=max_small_streams, replace=False)
    large = trace.streams_in_range(split + 1)

    def run(indices: np.ndarray, trials: int) -> list[dict[str, object]]:
        streams = materialize_streams(trace, indices.tolist())
        rows = []
        for memory_bits in memories:
            row: dict[str, object] = {"memory_bits": memory_bits}
            for name in estimators:
                errors = []
                for index, items in streams.items():
                    true = trace.stream_cardinality(index)
                    for trial in range(trials):
                        estimator = make_estimator(
                            name, memory_bits, TRACE_DESIGN_CARDINALITY,
                            seed + trial,
                        )
                        estimator.record_many(items)
                        errors.append(abs(estimator.query() - true))
                row[name] = float(np.mean(errors)) if errors else None
            rows.append(row)
        return rows

    return run(small, 1), run(large, large_trials)
