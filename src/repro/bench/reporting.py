"""Plain-text rendering of experiment tables and figure series.

The harness regenerates the paper's tables and figures as aligned text:
tables print rows of formatted cells; figures print their data series
(one row per x-value) so the curves can be eyeballed or piped into any
plotting tool. :func:`ascii_chart` additionally renders a figure's
series as a terminal line chart, and :func:`format_markdown` /
:func:`format_csv` provide machine-friendly table formats.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Iterable, Sequence


def format_number(value: object) -> str:
    """Human-friendly cell formatting for heterogeneous table values."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    str_rows = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render figure data: one column per named series."""
    headers = [x_label, *series.keys()]
    columns = list(series.values())
    for name, column in series.items():
        if len(column) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(column)} points, "
                f"expected {len(x_values)}"
            )
    rows = [
        [x, *(column[index] for column in columns)]
        for index, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def format_markdown(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join("---" for __ in headers) + "|")
    for row in rows:
        cells = [format_number(cell) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(headers)} columns"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def format_csv(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a table as CSV text (raw values, no pretty formatting)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        writer.writerow(row)
    return buffer.getvalue()


_CHART_MARKS = "ox+*#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    title: str | None = None,
) -> str:
    """Render named series as a terminal line chart.

    Each series gets a mark character; overlapping points show the
    later series' mark. Intended for eyeballing the paper's figures
    without a plotting stack.
    """
    if not series:
        raise ValueError("need at least one series")
    if len(x_values) < 2:
        raise ValueError("need at least two x values")

    def x_map(value: float) -> float:
        return math.log10(value) if log_x else float(value)

    def y_map(value: float) -> float:
        return math.log10(max(value, 1e-12)) if log_y else float(value)

    xs = [x_map(x) for x in x_values]
    all_y = [
        y_map(y)
        for column in series.values()
        for y in column
        if y is not None
    ]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(all_y), max(all_y)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for __ in range(height)]
    for mark_index, (name, column) in enumerate(series.items()):
        mark = _CHART_MARKS[mark_index % len(_CHART_MARKS)]
        if len(column) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(column)} points, "
                f"expected {len(x_values)}"
            )
        for x, y in zip(xs, column):
            if y is None:
                continue
            col = round((x - x_low) / x_span * (width - 1))
            row = round((y_map(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    top_label = format_number(
        10 ** y_high if log_y else y_high
    )
    bottom_label = format_number(10 ** y_low if log_y else y_low)
    label_width = max(len(top_label), len(bottom_label))
    for index, row_chars in enumerate(grid):
        if index == 0:
            label = top_label.rjust(label_width)
        elif index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row_chars)}")
    x_left = format_number(x_values[0])
    x_right = format_number(x_values[-1])
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    gap = width - len(x_left) - len(x_right)
    lines.append(" " * (label_width + 2) + x_left + " " * max(1, gap) + x_right)
    legend = "   ".join(
        f"{_CHART_MARKS[i % len(_CHART_MARKS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
