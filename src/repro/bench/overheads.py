"""Table I: recording and query overhead per data item, *measured*.

The paper's Table I is analytic: hash operations ``H`` and memory bits
accessed ``A`` per recorded item and per query. Every estimator in this
library carries instrumentation counters, so we regenerate the table by
recording a real stream and reading the counters back — which both
reproduces the paper's numbers and validates the instrumentation.

Key expected shapes:

- SMB's recording cost *per arrival* falls below 2H + 1A once sampling
  kicks in (amortized: most arrivals stop after one geometric hash);
- SMB's query cost is a constant 32 bits (two counters);
- FM/HLL++/HLL-TailC queries touch their whole register file (~m bits);
- MRB queries touch k counters.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.runner import PAPER_ESTIMATORS, make_estimator
from repro.streams import distinct_items


def overhead_table(
    memory_bits: int = 5_000,
    cardinality: int = 100_000,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Measured per-item recording overhead and per-query overhead."""
    items = distinct_items(cardinality, seed=seed + 5)
    rows = []
    for name in estimators:
        estimator = make_estimator(name, memory_bits, 1_000_000, seed)
        estimator.record_many(items)
        record_hashes = estimator.hash_ops / cardinality
        record_bits = estimator.bits_accessed / cardinality
        estimator.reset_counters()
        estimator.query()
        rows.append(
            {
                "estimator": name,
                "record hash/item": round(record_hashes, 3),
                "record bits/item": round(record_bits, 3),
                "query hash": estimator.hash_ops,
                "query bits": estimator.bits_accessed,
            }
        )
    return rows
