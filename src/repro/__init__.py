"""repro — Self-Morphing Bitmap cardinality estimation.

A production-quality reproduction of *Online Cardinality Estimation by
Self-morphing Bitmaps* (Wang, Ma, Chen, Wang — ICDE 2022): the SMB
estimator, every baseline the paper compares against, the theoretical
error bounds, and the full experiment harness.

Quickstart::

    from repro import SelfMorphingBitmap

    smb = SelfMorphingBitmap(memory_bits=5000)
    for item in ("alice", "bob", "alice"):
        smb.record(item)
    print(smb.query())   # ~2.0
"""

from repro.bitvector import BitVector
from repro.core.smb import SelfMorphingBitmap
from repro.engine import IngestPipeline, Partitioner, ShardPool
from repro.core.theory import (
    hll_error_bound,
    mrb_error_bound,
    smb_error_bound,
)
from repro.core.tuning import mrb_parameters, optimal_threshold
from repro.estimators import (
    AdaptiveBitmap,
    Bitmap,
    CardinalityEstimator,
    ExactCounter,
    FMSketch,
    HyperLogLog,
    HyperLogLogPlusPlus,
    HyperLogLogTailCut,
    KMinValues,
    LogLog,
    MultiResolutionBitmap,
    SuperLogLog,
)
from repro.kernels import HashPlane
from repro.sketches import PerFlowSketch
from repro.streams import (
    SyntheticTrace,
    TraceConfig,
    distinct_items,
    random_strings,
    stream_with_duplicates,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveBitmap",
    "BitVector",
    "Bitmap",
    "CardinalityEstimator",
    "ExactCounter",
    "FMSketch",
    "HashPlane",
    "HyperLogLog",
    "HyperLogLogPlusPlus",
    "HyperLogLogTailCut",
    "IngestPipeline",
    "KMinValues",
    "LogLog",
    "MultiResolutionBitmap",
    "Partitioner",
    "PerFlowSketch",
    "ShardPool",
    "SelfMorphingBitmap",
    "SuperLogLog",
    "SyntheticTrace",
    "TraceConfig",
    "distinct_items",
    "hll_error_bound",
    "mrb_error_bound",
    "mrb_parameters",
    "optimal_threshold",
    "random_strings",
    "smb_error_bound",
    "stream_with_duplicates",
    "__version__",
]
