"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro list                      # show all experiments
    python -m repro table4                    # recording throughput
    python -m repro fig6 --json fig6.json     # machine-readable output
    python -m repro all --json results.json
    REPRO_SCALE=1.0 python -m repro table4    # paper-scale workloads
    python -m repro engine --shards 8         # sharded ingestion engine
    python -m repro stats metrics.json        # render a metrics snapshot
    python -m repro serve --port 9464         # network cardinality server
    python -m repro agg --tenant f A:9464 B:9464  # cross-node aggregate

Each experiment produces one or more *blocks* — a title plus headers
and rows — printed as aligned text and optionally dumped as JSON. See
DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bench import (
    absolute_error_by_group,
    accuracy_sweep,
    format_table,
    overhead_table,
    query_throughput,
    query_throughput_vs_cardinality,
    query_throughput_vs_memory,
    recording_throughput,
    recording_throughput_table,
    select_columns,
    smb_throughput_by_range,
)
from repro.bench.runner import ALL_ESTIMATORS
from repro.core.theory import (
    beta_curve,
    hll_error_bound,
    mrb_error_bound,
    smb_error_bound,
)
from repro.core.tuning import (
    TABLE_III,
    mrb_parameters,
    optimal_threshold,
    optimal_threshold_table,
)

_DELTAS = np.round(np.arange(0.02, 0.42, 0.02), 3)


@dataclass
class Block:
    """One table of experiment output (figures also carry chart data)."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    chart: dict[str, object] | None = None

    def render(self, with_chart: bool = False) -> str:
        """Aligned-text rendering (plus an ASCII chart for figures)."""
        text = format_table(self.headers, self.rows, title=self.title)
        if with_chart and self.chart is not None:
            from repro.bench.reporting import ascii_chart

            text += "\n\n" + ascii_chart(
                self.chart["x"],
                self.chart["series"],
                log_x=bool(self.chart.get("log_x")),
                log_y=bool(self.chart.get("log_y")),
            )
        return text

    def to_json(self) -> dict[str, object]:
        """JSON-serializable form of the block."""
        return {"title": self.title, "headers": self.headers, "rows": self.rows}


def _from_dict_rows(rows: list[dict[str, object]], title: str) -> Block:
    headers = list(rows[0].keys())
    return Block(title, headers, [[row[h] for h in headers] for row in rows])


def _from_series(
    x_label: str,
    x_values: list[object],
    series: dict[str, list[object]],
    title: str,
    log_x: bool = False,
    log_y: bool = False,
) -> Block:
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(column[index] for column in series.values())]
        for index, x in enumerate(x_values)
    ]
    chart = {"x": x_values, "series": series, "log_x": log_x, "log_y": log_y}
    return Block(title, headers, rows, chart=chart)


# ----------------------------------------------------------------------
# Experiment runners: each returns a list of Blocks.
# ----------------------------------------------------------------------

def run_table1() -> list[Block]:
    """Table I: measured recording/query overheads."""
    return [_from_dict_rows(overhead_table(), "Measured overheads (Table I)")]


def run_table2() -> list[Block]:
    """Table II: optimal SMB threshold grid."""
    table = optimal_threshold_table()
    ms = sorted({m for m, __ in table}, reverse=True)
    ns = sorted({n for __, n in table}, reverse=True)
    rows = [
        [n, *(f"T={table[(m, n)]} (m/T={m // table[(m, n)]})" for m in ms)]
        for n in ns
    ]
    return [Block(
        "Optimal SMB threshold (Table II)",
        ["n \\ m", *(f"m={m}" for m in ms)],
        rows,
    )]


def run_table3() -> list[Block]:
    """Table III: MRB dimensioning grid."""
    ms = sorted({m for m, __ in TABLE_III}, reverse=True)
    ns = sorted({n for __, n in TABLE_III}, reverse=True)
    rows = []
    for n in ns:
        cells = []
        for m in ms:
            params = mrb_parameters(m, n)
            cells.append(f"{params.component_bits}x{params.num_components}")
        rows.append([n, *cells])
    return [Block(
        "MRB parameters m/k x k (Table III)",
        ["n \\ m", *(f"m={m}" for m in ms)],
        rows,
    )]


def run_fig5a() -> list[Block]:
    """Fig. 5a: SMB error bound beta(delta) per memory budget."""
    series = {}
    for m in (10_000, 5_000, 2_500, 1_000):
        t = optimal_threshold(m, 1_000_000)
        series[f"m={m} (T={t})"] = np.round(
            beta_curve(_DELTAS, 1e6, m, t), 4
        ).tolist()
    return [_from_series(
        "delta", _DELTAS.tolist(), series,
        "SMB error bound beta vs delta, n=1M (Fig. 5a)",
    )]


def run_fig5b() -> list[Block]:
    """Fig. 5b: bound comparison SMB vs MRB vs HLL++."""
    m, n = 10_000, 1e6
    t = optimal_threshold(m, 1_000_000)
    series = {
        "SMB": [round(smb_error_bound(float(d), n, m, t), 4) for d in _DELTAS],
        "MRB": [round(mrb_error_bound(float(d), n, 909, 11), 4) for d in _DELTAS],
        "HLL++": [round(hll_error_bound(float(d), m), 4) for d in _DELTAS],
    }
    return [_from_series(
        "delta", _DELTAS.tolist(), series,
        "Error bound comparison, n=1M, m=10000 (Fig. 5b)",
    )]


def run_table4() -> list[Block]:
    """Table IV: batch recording throughput vs cardinality."""
    return [_from_dict_rows(
        recording_throughput_table(),
        "Recording throughput (Mdps) vs cardinality, m=5000 (Table IV)",
    )]


def run_table4_scalar() -> list[Block]:
    """Table IV (scalar): per-item recording throughput."""
    return [_from_dict_rows(
        recording_throughput_table(path="scalar"),
        "Per-item (scalar path) recording throughput, m=5000",
    )]


def run_table5() -> list[Block]:
    """Table V: query throughput vs memory budget."""
    return [_from_dict_rows(
        query_throughput_vs_memory(),
        "Query throughput (queries/s) vs memory (Table V)",
    )]


def run_table6() -> list[Block]:
    """Table VI: query throughput vs cardinality."""
    return [_from_dict_rows(
        query_throughput_vs_cardinality(),
        "Query throughput (queries/s) vs cardinality, m=5000 (Table VI)",
    )]


def run_table7() -> list[Block]:
    """Table VII: MRB query throughput vs cardinality."""
    return [_from_dict_rows(
        query_throughput_vs_cardinality(estimators=("MRB", "SMB")),
        "MRB query throughput vs cardinality (Table VII)",
    )]


def _accuracy_blocks(memory_bits: int, label: str) -> list[Block]:
    rows = accuracy_sweep(memory_bits)
    blocks = []
    for metric, title in (("abs_error", "mean absolute error"),
                          ("rel_error", "mean relative error")):
        x_values, series = select_columns(rows, metric)
        rounded = {
            name: [round(v, 1 if metric == "abs_error" else 5) for v in col]
            for name, col in series.items()
        }
        blocks.append(_from_series(
            "cardinality", x_values, rounded,
            f"{title}, m={memory_bits} ({label})",
            log_x=True, log_y=(metric == "abs_error"),
        ))
    return blocks


def run_fig6() -> list[Block]:
    """Figs. 6: estimation error curves at m=10000."""
    return _accuracy_blocks(10_000, "Fig. 6")


def run_fig7() -> list[Block]:
    """Fig. 7: estimation error curves at m=5000."""
    return _accuracy_blocks(5_000, "Fig. 7")


def run_fig8() -> list[Block]:
    """Fig. 8: relative bias curves."""
    blocks = []
    for memory_bits in (10_000, 5_000):
        rows = accuracy_sweep(memory_bits)
        x_values, series = select_columns(rows, "bias")
        rounded = {n: [round(v, 5) for v in col] for n, col in series.items()}
        blocks.append(_from_series(
            "cardinality", x_values, rounded,
            f"relative bias, m={memory_bits} (Fig. 8)",
            log_x=True,
        ))
    return blocks


def run_table8() -> list[Block]:
    """Table VIII: CAIDA recording throughput (+ SMB by range)."""
    from repro.bench.caida import default_trace, materialize_streams

    trace = default_trace()
    streams = materialize_streams(trace)
    overall = recording_throughput(trace, streams=streams)
    top = Block(
        "CAIDA recording throughput (Table VIII)",
        ["estimator", "Mdps"],
        [list(item) for item in overall.items()],
    )
    bottom = _from_dict_rows(
        smb_throughput_by_range(trace, streams=streams),
        "SMB throughput by stream cardinality range",
    )
    return [top, bottom]


def run_table9() -> list[Block]:
    """Table IX: CAIDA query throughput."""
    rates = query_throughput()
    return [Block(
        "CAIDA query throughput (Table IX)",
        ["estimator", "queries/s"],
        [list(item) for item in rates.items()],
    )]


def run_table10() -> list[Block]:
    """Table X: CAIDA small-stream absolute error."""
    small, __ = absolute_error_by_group()
    return [_from_dict_rows(
        small, "CAIDA avg abs error, streams <= 1000 (Table X)"
    )]


def run_fig9() -> list[Block]:
    """Fig. 9: CAIDA large-stream error vs memory."""
    __, large = absolute_error_by_group()
    return [_from_dict_rows(
        large, "CAIDA avg abs error, streams > 1000 (Fig. 9)"
    )]


def run_extended() -> list[Block]:
    """Beyond the paper: accuracy of *every* estimator in the library."""
    rows = accuracy_sweep(
        5_000,
        cardinalities=(10_000, 100_000, 1_000_000),
        estimators=ALL_ESTIMATORS,
    )
    x_values, series = select_columns(rows, "rel_error", estimators=ALL_ESTIMATORS)
    rounded = {n: [round(v, 5) for v in col] for n, col in series.items()}
    return [_from_series(
        "cardinality", x_values, rounded,
        "mean relative error of every estimator, m=5000 (extended)",
    )]


def run_ablate_t() -> list[Block]:
    """Sensitivity of SMB error to the threshold T around the optimum."""
    from repro import SelfMorphingBitmap
    from repro.streams import distinct_items

    m, n = 5_000, 500_000
    optimum = optimal_threshold(m, 1_000_000)
    candidates = sorted(
        {max(4, int(optimum * f)) for f in (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)}
    )
    rows = []
    for t in candidates:
        if t > m // 2:
            continue
        errors = []
        for seed in range(10):
            smb = SelfMorphingBitmap(m, threshold=t, seed=seed)
            smb.record_many(distinct_items(n, seed=seed + 900))
            errors.append(abs(smb.query() - n) / n)
        rows.append({
            "T": t,
            "m/T": m // t,
            "beta(0.1)": round(smb_error_bound(0.1, n, m, t), 4),
            "measured rel error": round(float(np.mean(errors)), 5),
            "note": "<-- T* (design n=1M)" if t == optimum else "",
        })
    return [_from_dict_rows(
        rows, "SMB error vs threshold T at m=5000, n=500k (ablation)"
    )]


def run_ablate_chunk() -> list[Block]:
    """Batch chunk size vs SMB recording throughput."""
    import repro.core.smb as smb_module
    from repro.bench.runner import mdps, time_recording
    from repro.streams import distinct_items

    items = distinct_items(1_000_000, seed=7)
    original = smb_module.BATCH_CHUNK
    rows = []
    try:
        for chunk in (256, 1024, 4096, 8192, 32768, 131072):
            smb_module.BATCH_CHUNK = chunk
            estimator = smb_module.SelfMorphingBitmap(5_000, threshold=384)
            seconds = time_recording(estimator, items)
            rows.append({"chunk": chunk, "Mdps": round(mdps(items.size, seconds), 2)})
    finally:
        smb_module.BATCH_CHUNK = original
    return [_from_dict_rows(rows, "SMB recording throughput vs batch chunk size")]


def run_ablate_hash() -> list[Block]:
    """Why the mixer matters: estimates with a weak (identity) hash."""
    import numpy as np

    from repro import HyperLogLog, SelfMorphingBitmap
    from repro.hashing import GeometricHash, UniformHash

    class _IdentityHash(UniformHash):
        """A deliberately broken hash: no mixing at all."""

        def hash_u64(self, x):
            return x

        def hash_array(self, x):
            return x

    class _IdentityGeometric(GeometricHash):
        def __init__(self):
            super().__init__(0)
            self._hash = _IdentityHash(0)

    n = 100_000
    sequential = np.arange(n, dtype=np.uint64)  # worst case for weak hashing
    rows = []
    for name, build in (
        ("SMB", lambda: SelfMorphingBitmap(5_000, threshold=384, seed=0)),
        ("HLL", lambda: HyperLogLog(5_000, seed=0)),
    ):
        sound = build()
        sound.record_many(sequential)
        weak = build()
        weak._position_hash = _IdentityHash(0)
        weak._geometric_hash = _IdentityGeometric()
        if hasattr(weak, "_route_hash"):
            weak._route_hash = _IdentityHash(0)
        weak.record_many(sequential)
        rows.append({
            "estimator": name,
            "splitmix64 rel error": round(abs(sound.query() - n) / n, 4),
            "identity-hash rel error": round(abs(weak.query() - n) / n, 4),
        })
    return [_from_dict_rows(
        rows,
        "Estimation error with a sound vs broken hash (sequential ids)",
    )]


def run_ablate_base() -> list[Block]:
    """MRB base-selection saturation threshold sensitivity."""
    from repro import MultiResolutionBitmap
    from repro.streams import distinct_items

    n = 500_000
    rows = []
    for saturation in (0.5, 0.7, 0.8, 0.9, 0.95, 0.99):
        errors = []
        for seed in range(10):
            mrb = MultiResolutionBitmap(416, 12, seed=seed, saturation=saturation)
            mrb.record_many(distinct_items(n, seed=seed + 901))
            errors.append(abs(mrb.query() - n) / n)
        rows.append({
            "saturation": saturation,
            "measured rel error": round(float(np.mean(errors)), 5),
        })
    return [_from_dict_rows(rows, "MRB error vs base-selection saturation")]


EXPERIMENTS: dict[str, tuple[Callable[[], list[Block]], str]] = {
    "table1": (run_table1, "measured recording/query overheads"),
    "table2": (run_table2, "optimal SMB threshold grid"),
    "table3": (run_table3, "MRB parameter grid"),
    "fig5a": (run_fig5a, "SMB error bound beta vs delta"),
    "fig5b": (run_fig5b, "bound comparison SMB/MRB/HLL++"),
    "table4": (run_table4, "recording throughput vs cardinality"),
    "table4-scalar": (run_table4_scalar, "per-item recording throughput"),
    "table5": (run_table5, "query throughput vs memory"),
    "table6": (run_table6, "query throughput vs cardinality"),
    "table7": (run_table7, "MRB query throughput vs cardinality"),
    "fig6": (run_fig6, "estimation error, m=10000"),
    "fig7": (run_fig7, "estimation error, m=5000"),
    "fig8": (run_fig8, "relative bias"),
    "table8": (run_table8, "CAIDA recording throughput"),
    "table9": (run_table9, "CAIDA query throughput"),
    "table10": (run_table10, "CAIDA error, small streams"),
    "fig9": (run_fig9, "CAIDA error vs memory, large streams"),
    "extended": (run_extended, "accuracy of every estimator in the library"),
    "ablate-t": (run_ablate_t, "SMB threshold sensitivity"),
    "ablate-chunk": (run_ablate_chunk, "SMB batch chunk size sweep"),
    "ablate-base": (run_ablate_base, "MRB base-selection sensitivity"),
    "ablate-hash": (run_ablate_hash, "hash quality: splitmix64 vs identity"),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "engine":
        # The ingestion-engine subcommand has its own argument surface
        # (shards, chunking, checkpointing) — dispatch before the
        # experiment parser sees it.
        from repro.engine.cli import engine_main

        return engine_main(argv[1:])
    if argv and argv[0] == "analyze":
        # Static-analysis subcommand (invariant checkers); dispatched
        # early for the same reason as `engine`.
        from repro.analysis.cli import analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "stats":
        # Metrics-snapshot viewer (repro.obs); dispatched early for the
        # same reason as `engine`.
        from repro.obs.cli import stats_main

        return stats_main(argv[1:])
    if argv and argv[0] == "serve":
        # Network serving layer (repro.serve); dispatched early for the
        # same reason as `engine`.
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "agg":
        # Cross-node aggregation (repro.agg); dispatched early for the
        # same reason as `engine`.
        from repro.agg.cli import agg_main

        return agg_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
        epilog="Set REPRO_SCALE (default ~0.01) to scale workload sizes; "
        "REPRO_SCALE=1.0 runs the paper-scale experiments. "
        "'repro engine --help' documents the sharded ingestion engine; "
        "'repro analyze --help' the static invariant checkers; "
        "'repro stats --help' the metrics-snapshot viewer; "
        "'repro serve --help' the network cardinality server; "
        "'repro agg --help' the cross-node sketch aggregator.",
    )
    parser.add_argument(
        "experiment",
        choices=["list", "all", *EXPERIMENTS],
        help="experiment id (see DESIGN.md §3), 'list', or 'all'",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the results as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figure experiments as ASCII line charts too",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (__, description) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    collected: dict[str, list[dict[str, object]]] = {}
    for name in names:
        runner, description = EXPERIMENTS[name]
        print(f"== {name}: {description} ==")
        blocks = runner()
        collected[name] = [block.to_json() for block in blocks]
        for block in blocks:
            print(block.render(with_chart=args.chart))
            print()

    if args.json:
        payload = json.dumps(collected, indent=2, default=str)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload)
            print(f"wrote JSON results to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
