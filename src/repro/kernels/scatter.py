"""Scatter-reduce kernels: vectorized ``target[idx] op= values``.

Every register-file estimator's batch path reduces to one of two
scatter operations: an elementwise *maximum* into a register array
(LogLog family, HLL family, tail-cut offsets, virtual HLL pools) or an
elementwise *bitwise OR* into a word array (FM registers, the packed
``BitVector`` words behind every bitmap estimator). Centralizing them
here keeps the estimators strategy-agnostic.

Strategy selection, measured on 10^6 random updates into a few thousand
registers (see ``benchmarks/bench_kernels.py``):

- NumPy >= 1.25 ships *indexed loops* for ``ufunc.at``, making
  ``np.maximum.at`` / ``np.bitwise_or.at`` the fastest option by a wide
  margin (~2 ms and ~9 ms per 10^6 updates here — 50x faster than a
  stable argsort + ``reduceat`` pass, whose sort alone costs ~80 ms);
- on older NumPy, ``ufunc.at`` falls back to a notoriously slow
  buffered item loop, and the sorted ``reduceat`` grouping wins. That
  path is kept as the portable fallback and exercised directly by the
  kernel tests so both strategies stay bit-for-bit interchangeable.

Both strategies are exact (no floating point involved), so the choice
is invisible to the estimator contract.
"""

from __future__ import annotations

import numpy as np

#: NumPy 1.25 introduced indexed ufunc.at loops (numpy/numpy#23136),
#: turning the scatter hot path from a buffered item loop into a single
#: C pass. Selected once at import.
_FAST_UFUNC_AT = np.lib.NumpyVersion(np.__version__) >= "1.25.0"


def _grouped(
    indices: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable-sort ``(indices, values)`` and locate the group starts.

    Returns ``(sorted_indices_at_starts, group_starts, sorted_values)``
    ready for a ``ufunc.reduceat`` over each equal-index run. Stability
    is not required for max/or (both are commutative and idempotent)
    but keeps the kernel reusable for order-sensitive reductions.
    """
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_idx[1:] != sorted_idx[:-1]))
    )
    return sorted_idx[starts], starts, values[order]


def scatter_max(
    target: np.ndarray, indices: np.ndarray, values: np.ndarray
) -> None:
    """In-place ``target[indices] = max(target[indices], values)``.

    Duplicate indices are reduced with ``max`` (equivalent to applying
    the updates sequentially in any order).
    """
    if indices.size == 0:
        return
    if _FAST_UFUNC_AT:
        np.maximum.at(target, indices, values)
        return
    slots, starts, sorted_values = _grouped(indices, values)
    reduced = np.maximum.reduceat(sorted_values, starts)
    target[slots] = np.maximum(target[slots], reduced)


def scatter_or(
    target: np.ndarray, indices: np.ndarray, values: np.ndarray
) -> None:
    """In-place ``target[indices] |= values`` with duplicate reduction."""
    if indices.size == 0:
        return
    if _FAST_UFUNC_AT:
        np.bitwise_or.at(target, indices, values)
        return
    slots, starts, sorted_values = _grouped(indices, values)
    reduced = np.bitwise_or.reduceat(sorted_values, starts)
    target[slots] = target[slots] | reduced
