"""The hash plane: per-chunk hash arrays computed once, shared by all.

Every estimator in this library derives its per-item randomness from
the same two primitives over the canonical uint64 value: a seeded
splitmix64 *uniform* hash and its trailing-zero *geometric* level
(Definition 1 of the paper). A chunk of the stream therefore has a
small set of hash arrays that every consumer of that chunk draws from —
the **hash plane**:

    plane = HashPlane.of(chunk)
    smb.record_plane(plane)        # geometric(seed), positions(seed', m)
    hll.record_plane(plane)        # positions(seed, t), geometric(seed'')
    pool.record_plane(plane)       # routing uniform + gathered sub-planes

:class:`HashPlane` memoizes each array by ``(kind, seed[, modulus])``
the first time a consumer asks for it. Consumers with the same seed
(mirrored estimators, the K same-seed shards of ``ShardPool.of``, the
d rows of a SpreadSketch, a benchmark recording one stream into several
baselines that share a route or geometric seed) hit the cache and pay
nothing. Morphing, round filters and register scatters all read from
the plane, so a chunk is hashed **once** no matter how many structures
consume it.

Memory: each materialized array is 8 bytes/item for uniform and
position arrays and 1 byte/item for geometric levels; a plane over an
8192-item chunk with three consumers typically holds 3-5 arrays
(~200 KB), freed with the plane when the chunk has been applied.

Partitioning: :meth:`take` builds a sub-plane for a subset of the chunk
(the engine's per-shard sub-streams), gathering every *already
materialized* array instead of re-hashing — the gathered copies are
owned by the sub-plane, so handing sub-planes to worker threads is
safe while the parent is no longer mutated.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.hashing import (
    UniformHash,
    canonical_u64_array,
    trailing_zeros_array,
)

#: A plane request names one hash array: ("uniform", seed),
#: ("geometric", seed) or ("positions", seed, modulus). Estimators
#: advertise theirs via ``CardinalityEstimator.plane_requests`` so
#: pools and pipelines can prefetch full-width arrays before splitting.
PlaneRequest = Tuple


def uniform_request(seed: int) -> PlaneRequest:
    """Request the seeded uniform (splitmix64) hash array."""
    return ("uniform", int(seed))


def geometric_request(seed: int) -> PlaneRequest:
    """Request the seeded geometric-level array."""
    return ("geometric", int(seed))


def positions_request(seed: int, modulus: int) -> PlaneRequest:
    """Request the seeded uniform hash reduced modulo ``modulus``."""
    return ("positions", int(seed), int(modulus))


class HashPlane:
    """Memoized hash arrays over one chunk of canonical uint64 values.

    Parameters
    ----------
    values:
        Canonical ``uint64`` array (see ``repro.hashing.canonical_u64``).
        The constructor trusts the dtype; use :meth:`of` to canonicalize
        arbitrary items.
    """

    __slots__ = ("values", "_uniform", "_geometric", "_positions")

    def __init__(self, values: np.ndarray) -> None:
        self.values = values
        self._uniform: dict[int, np.ndarray] = {}
        self._geometric: dict[int, np.ndarray] = {}
        self._positions: dict[tuple[int, int], np.ndarray] = {}

    @classmethod
    def of(cls, items: Iterable[object] | np.ndarray) -> "HashPlane":
        """Canonicalize ``items`` and wrap them in a fresh plane."""
        return cls(canonical_u64_array(items))

    @property
    def size(self) -> int:
        """Number of values in the chunk."""
        return int(self.values.size)

    # ------------------------------------------------------------------
    # Hash arrays (memoized)
    # ------------------------------------------------------------------
    def uniform(self, seed: int) -> np.ndarray:
        """``UniformHash(seed)`` over the chunk, computed at most once."""
        seed = int(seed)
        array = self._uniform.get(seed)
        if array is None:
            array = UniformHash(seed).hash_array(self.values)
            self._uniform[seed] = array
        return array

    def geometric(self, seed: int) -> np.ndarray:
        """``GeometricHash(seed)`` levels (uint8), computed at most once.

        Derived from :meth:`uniform` of the same seed, so a consumer
        pair needing both (e.g. SMB's sampling filter plus a mirror's
        register ranks) shares the expensive mixing pass.
        """
        seed = int(seed)
        array = self._geometric.get(seed)
        if array is None:
            array = trailing_zeros_array(self.uniform(seed))
            self._geometric[seed] = array
        return array

    def positions(self, seed: int, modulus: int) -> np.ndarray:
        """``uniform(seed) % modulus``, memoized per ``(seed, modulus)``."""
        key = (int(seed), int(modulus))
        array = self._positions.get(key)
        if array is None:
            array = self.uniform(key[0]) % np.uint64(key[1])
            self._positions[key] = array
        return array

    def prefetch(self, requests: Iterable[PlaneRequest]) -> None:
        """Materialize every requested array (full vector width).

        Pools call this before :meth:`take` so the per-shard sub-planes
        are pure gathers — the shards themselves never hash.
        """
        # analysis: allow(purity.loop) -- iterates the request list (a
        # handful of descriptors), never the chunk values
        for request in requests:
            kind = request[0]
            if kind == "uniform":
                self.uniform(request[1])
            elif kind == "geometric":
                self.geometric(request[1])
            elif kind == "positions":
                self.positions(request[1], request[2])
            else:
                raise ValueError(f"unknown plane request {request!r}")

    # ------------------------------------------------------------------
    # Derived planes
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "HashPlane":
        """Sub-plane of ``values[indices]`` with gathered hash arrays.

        Every array already materialized on this plane is gathered into
        the child (no re-hashing); arrays requested later on the child
        are computed over the child's values only. The child owns its
        copies, so it can cross a thread boundary.
        """
        child = HashPlane(self.values[indices])
        # analysis: allow(purity.loop) -- per memoized array, gathers vectorized
        for seed, array in self._uniform.items():
            child._uniform[seed] = array[indices]
        # analysis: allow(purity.loop) -- per memoized array, gathers vectorized
        for seed, array in self._geometric.items():
            child._geometric[seed] = array[indices]
        # analysis: allow(purity.loop) -- per memoized array, gathers vectorized
        for key, array in self._positions.items():
            child._positions[key] = array[indices]
        return child

    def materialized(self) -> Sequence[PlaneRequest]:
        """The requests currently cached (diagnostics and tests)."""
        return (
            tuple(("uniform", seed) for seed in self._uniform)
            + tuple(("geometric", seed) for seed in self._geometric)
            + tuple(("positions", *key) for key in self._positions)
        )

    def __repr__(self) -> str:
        return (
            f"HashPlane(size={self.size}, "
            f"materialized={len(self.materialized())})"
        )
