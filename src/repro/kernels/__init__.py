"""Shared vectorized kernels under every estimator's batch path.

Two building blocks live here:

- :class:`~repro.kernels.plane.HashPlane` — the per-chunk *hash plane*:
  the canonical ``u64 → splitmix64 → geometric-level`` arrays computed
  once per chunk and shared by every consumer of that chunk (estimators,
  shard pools, ingestion pipelines, benchmark harnesses);
- :mod:`~repro.kernels.scatter` — scatter-reduce kernels
  (:func:`scatter_max`, :func:`scatter_or`) that apply register maxima
  and bit ORs through the fastest strategy the running NumPy offers.

See ``docs/architecture.md`` ("kernels layer") for the lifecycle and
memory-footprint discussion.
"""

from repro.kernels.plane import (
    HashPlane,
    geometric_request,
    positions_request,
    uniform_request,
)
from repro.kernels.scatter import scatter_max, scatter_or

__all__ = [
    "HashPlane",
    "geometric_request",
    "positions_request",
    "uniform_request",
    "scatter_max",
    "scatter_or",
]
