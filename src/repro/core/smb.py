"""The Self-Morphing Bitmap (SMB) — the paper's contribution (§III).

SMB keeps a single physical bitmap of ``m`` bits. Recording proceeds in
*rounds* indexed by ``r`` (starting at 0); round ``r`` samples items
with probability ``p_r = 2^-r`` via the geometric hash (Step 1 of
Algorithm 1: keep item ``d`` iff ``G(d) >= r``). A counter ``v`` tracks
the bits newly set in the current round; when ``v`` reaches the
threshold ``T`` the bitmap *morphs*: the round index advances (halving
the sampling probability) and the bits set so far are conceptually
removed, leaving a logical bitmap ``L_r`` of ``m_r = m - r·T`` bits.

Morphing is free: the physical array never changes. The estimate for
each completed round is a constant, accumulated in the precomputed
prefix array ``S`` (eq. (9)):

    S[r] = Σ_{i=0}^{r-1} -2^i · m · ln(1 - T / m_i)

so a query reads just two counters (eq. (11), Algorithm 2):

    n̂ = S[r] - 2^r · m · ln(1 - v / m_r)

Properties proved in the paper and enforced by tests here:

- Lemma 1  — round ``i`` samples with probability exactly ``2^-i``;
- Theorem 2 — duplicates never alter the state (first appearance wins);
- the maximum estimate exceeds MRB's at equal memory (§III-B).

The batch path ``record_many`` is bit-for-bit equivalent to sequential
``record`` calls: chunks that would cross the round threshold fall back
to per-item processing (a crossing happens at most ``m/T`` times in an
estimator's lifetime, so the amortized cost is negligible).
"""

from __future__ import annotations

import math
import struct

import numpy as np

from repro.bitvector import BitVector
from repro.estimators.base import CardinalityEstimator
from repro.hashing import GeometricHash, UniformHash

_HEADER = struct.Struct("<4sQQQQQ")  # magic, m, T, seed, r, v
_MAGIC = b"SMB1"

#: Chunk size of the batch recording path. Large enough to amortize the
#: vectorized hashing, small enough that the per-item fallback on a
#: round crossing stays cheap.
BATCH_CHUNK = 8192


def round_constants(memory_bits: int, threshold: int) -> np.ndarray:
    """The paper's S array (eq. (9)) for an (m, T) configuration.

    ``S[r]`` is the cumulative estimate of the first ``r`` completed
    rounds. Every round ``i`` with ``m_i = m - i·T > T`` completes with
    a finite per-round estimate; the final supported round (``m_i ==
    T``) would fill the bitmap completely, so its completion marks
    saturation and ``S[m//T]`` is infinite.
    """
    m, t = int(memory_bits), int(threshold)
    max_rounds = m // t
    s = np.zeros(max_rounds + 1, dtype=np.float64)
    for i in range(max_rounds):
        m_i = m - i * t
        if m_i > t:
            term = -math.ldexp(m, i) * math.log(1.0 - t / m_i)
        else:  # m_i == t: completing this round saturates the bitmap
            term = math.inf
        s[i + 1] = s[i] + term
    return s


class SelfMorphingBitmap(CardinalityEstimator):
    """Self-morphing bitmap estimator (see module docstring).

    Parameters
    ----------
    memory_bits:
        Size ``m`` of the physical bitmap.
    threshold:
        Round-advance threshold ``T``; when omitted, the optimal value
        for ``design_cardinality`` is computed per §IV-B of the paper.
    design_cardinality:
        The largest stream cardinality the estimator is provisioned
        for; only used to choose ``T`` when ``threshold`` is None.
    seed:
        Seed for the geometric (sampling) and uniform (position) hashes.
    """

    name = "SMB"

    def __init__(
        self,
        memory_bits: int,
        threshold: int | None = None,
        design_cardinality: int = 1_000_000,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if memory_bits < 4:
            raise ValueError(f"memory_bits must be >= 4, got {memory_bits}")
        self.m = int(memory_bits)
        if threshold is None:
            from repro.core.tuning import optimal_threshold

            threshold = optimal_threshold(self.m, design_cardinality)
        if not 1 <= threshold <= self.m // 2:
            raise ValueError(
                f"threshold must be in [1, m/2] = [1, {self.m // 2}], "
                f"got {threshold}"
            )
        self.T = int(threshold)
        self.seed = int(seed)
        self.r = 0  # round index
        self.v = 0  # bits newly set in the current round
        self._bits = BitVector(self.m)
        self._geometric_hash = GeometricHash(seed)
        self._position_hash = UniformHash(seed + 0x504F53)
        self._s = round_constants(self.m, self.T)

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def max_rounds(self) -> int:
        """Number of rounds the configuration supports (m // T)."""
        return self.m // self.T

    @property
    def sampling_probability(self) -> float:
        """The current round's sampling probability p_r = 2^-r."""
        return math.ldexp(1.0, -self.r)

    @property
    def logical_bits(self) -> int:
        """Size m_r of the current logical bitmap."""
        return self.m - self.r * self.T

    @property
    def round_prefix(self) -> np.ndarray:
        """The precomputed S array (read-only)."""
        view = self._s.view()
        view.flags.writeable = False
        return view

    @property
    def saturated(self) -> bool:
        """True once every physical bit is one (estimate clamps).

        The invariant ``ones == r·T + v`` of Algorithm 1 makes this a
        pure counter check. When ``m % T != 0`` the last round is a
        partial one of ``m mod T`` logical bits that can never complete;
        saturation there means ``v`` has consumed all of them.
        """
        return self.r * self.T + self.v >= self.m

    # ------------------------------------------------------------------
    # Recording (Algorithm 1)
    # ------------------------------------------------------------------
    def _record_u64(self, value: int) -> None:
        self.hash_ops += 1
        if self._geometric_hash.value_u64(value) < self.r:
            return  # Step 1: not sampled this round
        self.hash_ops += 1
        self.bits_accessed += 1
        position = self._position_hash.hash_u64(value) % self.m
        if self._bits.set(position):  # Step 2
            self.v += 1
            if self.v >= self.T:  # Step 3: morph
                self.r += 1
                self.v = 0

    def _chunk_size(self) -> int:
        """Adaptive batch chunk: small near a round boundary.

        Crossing a round boundary forces the tail of the current chunk
        to be reprocessed, so the chunk is sized to roughly twice the
        expected number of arrivals until the next morph (new-bit rate
        = p_r · zeros/m per arrival), clamped to [MIN, BATCH_CHUNK].
        """
        zeros = self._bits.zeros
        if zeros <= 0:
            return BATCH_CHUNK
        remaining = self.T - self.v
        expected = 2.0 * remaining * (self.m / zeros) * math.ldexp(1.0, self.r)
        return max(1024, min(BATCH_CHUNK, int(expected)))

    def _record_batch(self, values: np.ndarray) -> None:
        m_u64 = np.uint64(self.m)
        start = 0
        while start < values.size:
            chunk = values[start:start + self._chunk_size()]
            if self.r == 0:
                # Round 0 samples everything: the Step-1 comparison
                # G(d) >= 0 is vacuous, so skip computing it (the hash
                # op is still billed — the algorithm specifies it).
                sampled_idx = np.arange(chunk.size)
                sampled = chunk
            else:
                levels = self._geometric_hash.value_array(chunk)
                sampled_idx = np.flatnonzero(levels >= self.r)
                if sampled_idx.size == 0:
                    self.hash_ops += chunk.size
                    start += chunk.size
                    continue
                sampled = chunk[sampled_idx]
            positions = self._position_hash.hash_array(sampled) % m_u64
            if self.v + sampled_idx.size < self.T:
                # Even if every sampled arrival set a new bit the round
                # could not end: apply directly, no dedup pass needed.
                self.v += self._bits.set_many(positions)
                self.hash_ops += chunk.size + sampled_idx.size
                self.bits_accessed += sampled_idx.size
                start += chunk.size
                continue
            # First occurrence of each position within the chunk decides
            # whether that arrival sets a new bit, exactly as in the
            # sequential semantics (order among *distinct* positions
            # cannot matter while the round is fixed).
            unique, first_idx = np.unique(positions, return_index=True)
            new_first = first_idx[~self._bits.test_many(unique)]
            need = self.T - self.v
            if new_first.size < need:
                # The whole chunk stays inside the current round.
                self._bits.set_many(unique)
                self.v += new_first.size
                self.hash_ops += chunk.size + sampled_idx.size
                self.bits_accessed += sampled_idx.size
                start += chunk.size
            else:
                # The round threshold is crossed at the `need`-th new
                # bit. Consume the chunk exactly up to and including the
                # crossing arrival, morph, and reprocess the remainder
                # under the advanced round (new Step-1 filter).
                cut = int(np.sort(new_first)[need - 1])
                self._bits.set_many(positions[:cut + 1])
                self.r += 1
                self.v = 0
                consumed = int(sampled_idx[cut]) + 1
                self.hash_ops += consumed + cut + 1
                self.bits_accessed += cut + 1
                start += consumed

    # ------------------------------------------------------------------
    # Querying (Algorithm 2)
    # ------------------------------------------------------------------
    def query(self) -> float:
        self.bits_accessed += 32  # the paper's accounting: read r and v
        if self.saturated:
            return self.max_estimate()
        m_r = self.logical_bits
        return float(self._s[self.r]) - math.ldexp(self.m, self.r) * math.log(
            1.0 - self.v / m_r
        )

    def estimate_at(self, r: int, v: int) -> float:
        """The estimate Algorithm 2 would return for counters (r, v).

        Exposed for the theory module (Theorem 3 needs the inverse map
        from target estimates back to counter values) and for tests.
        """
        if not 0 <= r < len(self._s):
            raise ValueError(f"round {r} out of range for this configuration")
        m_r = self.m - r * self.T
        if not 0 <= v < m_r:
            raise ValueError(f"v={v} out of range for round {r} (m_r={m_r})")
        return float(self._s[r]) - math.ldexp(self.m, r) * math.log(1.0 - v / m_r)

    def max_estimate(self) -> float:
        """Largest finite estimate (§III-B): the last round one bit short.

        With ``m`` divisible by ``T`` this is the paper's ``r = m/T - 1``,
        ``v = T - 1`` configuration, which exceeds MRB's maximum at equal
        memory when component sizes match (2^{k-1}·m·ln T  vs
        2^{k-1}·(m/k)·ln(m/k)). Otherwise the last (partial) round of
        ``m mod T`` logical bits extends the range one sampling level
        further.
        """
        last = self.max_rounds - 1 if self.m % self.T == 0 else self.max_rounds
        m_last = self.m - last * self.T
        return float(self._s[last]) + math.ldexp(self.m, last) * math.log(m_last)

    def memory_bits(self) -> int:
        # The paper's accounting: the m-bit array plus the r and v
        # counters, which need 6 + 26 bits (§III-B).
        return self.m + 32

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    def merge(self, other: CardinalityEstimator) -> None:
        raise NotImplementedError(
            "SelfMorphingBitmap cannot merge: the morphing schedule depends "
            "on arrival order, so two SMBs' logical bitmaps are not aligned. "
            "Use HyperLogLog/MRB when distributed merging is required."
        )

    def to_bytes(self) -> bytes:
        header = _HEADER.pack(_MAGIC, self.m, self.T, self.seed, self.r, self.v)
        return header + self._bits.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SelfMorphingBitmap":
        magic, m, t, seed, r, v = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise ValueError("not a serialized SelfMorphingBitmap")
        smb = cls(m, threshold=t, seed=seed)
        smb.r = r
        smb.v = v
        smb._bits = BitVector.from_bytes(data[_HEADER.size:])
        if len(smb._bits) != m:
            raise ValueError("corrupt SelfMorphingBitmap payload: size mismatch")
        if smb._bits.ones != r * t + v:
            # ones == r*T + v is an invariant of Algorithm 1.
            raise ValueError(
                "corrupt SelfMorphingBitmap payload: ones != r*T + v"
            )
        return smb

    def __repr__(self) -> str:
        return (
            f"SelfMorphingBitmap(m={self.m}, T={self.T}, r={self.r}, "
            f"v={self.v}, p={self.sampling_probability})"
        )
