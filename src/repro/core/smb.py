"""The Self-Morphing Bitmap (SMB) — the paper's contribution (§III).

SMB keeps a single physical bitmap of ``m`` bits. Recording proceeds in
*rounds* indexed by ``r`` (starting at 0); round ``r`` samples items
with probability ``p_r = 2^-r`` via the geometric hash (Step 1 of
Algorithm 1: keep item ``d`` iff ``G(d) >= r``). A counter ``v`` tracks
the bits newly set in the current round; when ``v`` reaches the
threshold ``T`` the bitmap *morphs*: the round index advances (halving
the sampling probability) and the bits set so far are conceptually
removed, leaving a logical bitmap ``L_r`` of ``m_r = m - r·T`` bits.

Morphing is free: the physical array never changes. The estimate for
each completed round is a constant, accumulated in the precomputed
prefix array ``S`` (eq. (9)):

    S[r] = Σ_{i=0}^{r-1} -2^i · m · ln(1 - T / m_i)

so a query reads just two counters (eq. (11), Algorithm 2):

    n̂ = S[r] - 2^r · m · ln(1 - v / m_r)

Properties proved in the paper and enforced by tests here:

- Lemma 1  — round ``i`` samples with probability exactly ``2^-i``;
- Theorem 2 — duplicates never alter the state (first appearance wins);
- the maximum estimate exceeds MRB's at equal memory (§III-B).

The batch path ``record_many`` is bit-for-bit equivalent to sequential
``record`` calls, *including* round crossings: the crossing offset is
located from the per-chunk count of newly set bits (the ``need``-th
first-occurrence of a fresh position), the chunk is split there, the
bitmap morphs, and the remainder re-enters under the advanced round's
Step-1 filter. The geometric levels live on a shared
:class:`~repro.kernels.HashPlane`, computed once per chunk; position
hashing follows the algorithm's own economics — only arrivals that
survive Step 1 are position-hashed (one dedup window at a time), which
is exactly why SMB's throughput *grows* with cardinality. A plane that
already carries a materialized position array (a mirror or pool
prefetched it) is gathered from instead.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Optional, Protocol

import numpy as np

from repro.bitvector import BitVector
from repro.estimators.base import CardinalityEstimator
from repro.framing import unpack_header
from repro.hashing import GeometricHash, UniformHash
from repro.kernels import HashPlane, geometric_request, positions_request

_HEADER = struct.Struct("<4sQQQQQ")  # magic, m, T, seed, r, v
_MAGIC = b"SMB1"

#: Upper bound on the batch path's dedup window — the number of sampled
#: arrivals examined by one ``np.unique`` pass when a morph may occur.
#: Large enough to amortize the pass, small enough that overshooting a
#: round crossing discards little work.
BATCH_CHUNK = 8192


def round_constants(memory_bits: int, threshold: int) -> np.ndarray:
    """The paper's S array (eq. (9)) for an (m, T) configuration.

    ``S[r]`` is the cumulative estimate of the first ``r`` completed
    rounds. Every round ``i`` with ``m_i = m - i·T > T`` completes with
    a finite per-round estimate; the final supported round (``m_i ==
    T``) would fill the bitmap completely, so its completion marks
    saturation and ``S[m//T]`` is infinite.
    """
    m, t = int(memory_bits), int(threshold)
    max_rounds = m // t
    s = np.zeros(max_rounds + 1, dtype=np.float64)
    for i in range(max_rounds):
        m_i = m - i * t
        if m_i > t:
            term = -math.ldexp(m, i) * math.log(1.0 - t / m_i)
        else:  # m_i == t: completing this round saturates the bitmap
            term = math.inf
        s[i + 1] = s[i] + term
    return s


class SMBMetricsSink(Protocol):
    """Observer protocol for SMB's adaptivity signals.

    Implemented by :class:`repro.obs.instrument.SMBObserver`; the core
    layer only knows this structural interface, so it stays free of any
    observability import. An attached sink is called once per recorded
    plane (per chunk on the batch path) — never per item.
    """

    def update(self, smb: "SelfMorphingBitmap") -> None:
        """Refresh the sink from the estimator's current counters."""
        ...


class SelfMorphingBitmap(CardinalityEstimator):
    """Self-morphing bitmap estimator (see module docstring).

    Parameters
    ----------
    memory_bits:
        Size ``m`` of the physical bitmap.
    threshold:
        Round-advance threshold ``T``; when omitted, the optimal value
        for ``design_cardinality`` is computed per §IV-B of the paper.
    design_cardinality:
        The largest stream cardinality the estimator is provisioned
        for; only used to choose ``T`` when ``threshold`` is None.
    seed:
        Seed for the geometric (sampling) and uniform (position) hashes.
    """

    name = "SMB"

    #: Optional metrics observer (see :class:`SMBMetricsSink`). A class
    #: attribute — not serialized state, not part of ``__init__`` — so
    #: the default costs one attribute read per recorded plane.
    _obs_sink: Optional[SMBMetricsSink] = None

    def __init__(
        self,
        memory_bits: int,
        threshold: int | None = None,
        design_cardinality: int = 1_000_000,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if memory_bits < 4:
            raise ValueError(f"memory_bits must be >= 4, got {memory_bits}")
        self.m = int(memory_bits)
        if threshold is None:
            from repro.core.tuning import optimal_threshold

            threshold = optimal_threshold(self.m, design_cardinality)
        if not 1 <= threshold <= self.m // 2:
            raise ValueError(
                f"threshold must be in [1, m/2] = [1, {self.m // 2}], "
                f"got {threshold}"
            )
        self.T = int(threshold)
        self.seed = int(seed)
        self.r = 0  # round index
        self.v = 0  # bits newly set in the current round
        self._bits = BitVector(self.m)
        self._geometric_hash = GeometricHash(seed)
        self._position_hash = UniformHash(seed + 0x504F53)
        self._s = round_constants(self.m, self.T)

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def max_rounds(self) -> int:
        """Number of rounds the configuration supports (m // T)."""
        return self.m // self.T

    @property
    def sampling_probability(self) -> float:
        """The current round's sampling probability p_r = 2^-r."""
        return math.ldexp(1.0, -self.r)

    @property
    def logical_bits(self) -> int:
        """Size m_r of the current logical bitmap."""
        return self.m - self.r * self.T

    @property
    def fill_ratio(self) -> float:
        """Fill ratio v / m_r of the current logical bitmap.

        One of the paper's adaptivity signals: the morph fires when it
        would reach T / m_r. Reported as 1.0 once the final (possibly
        partial) round has no logical bits left.
        """
        m_r = self.logical_bits
        return self.v / m_r if m_r > 0 else 1.0

    @property
    def round_prefix(self) -> np.ndarray:
        """The precomputed S array (read-only)."""
        view = self._s.view()
        view.flags.writeable = False
        return view

    @property
    def saturated(self) -> bool:
        """True once every physical bit is one (estimate clamps).

        The invariant ``ones == r·T + v`` of Algorithm 1 makes this a
        pure counter check. When ``m % T != 0`` the last round is a
        partial one of ``m mod T`` logical bits that can never complete;
        saturation there means ``v`` has consumed all of them.
        """
        return self.r * self.T + self.v >= self.m

    def attach_metrics(self, sink: Optional[SMBMetricsSink]) -> None:
        """Attach (or, with ``None``, detach) a metrics sink.

        The sink's ``update`` runs immediately (establishing the sink's
        baseline round, so morph deltas start from the current state)
        and then once per recorded plane on the batch path — enough to
        track rounds, fill ratio and morphs without per-item work. Not
        serialized: a restored estimator starts with no sink.
        """
        self._obs_sink = sink
        if sink is not None:
            sink.update(self)

    # ------------------------------------------------------------------
    # Recording (Algorithm 1)
    # ------------------------------------------------------------------
    def _record_u64(self, value: int) -> None:
        self.hash_ops += 1
        if self._geometric_hash.value_u64(value) < self.r:
            return  # Step 1: not sampled this round
        self.hash_ops += 1
        self.bits_accessed += 1
        position = self._position_hash.hash_u64(value) % self.m
        if self._bits.set(position):  # Step 2
            self.v += 1
            if self.v >= self.T:  # Step 3: morph
                self.r += 1
                self.v = 0

    def plane_requests(self) -> tuple:
        """Step-1 geometric levels only.

        The Step-2 position hash is deliberately *not* requested:
        prefetching it at full width would position-hash every arrival,
        but the algorithm only hashes arrivals that survive Step 1 —
        the source of SMB's growing recording throughput. The batch
        path hashes positions per dedup window instead (and gathers
        from the plane when some other consumer already materialized
        the array).
        """
        return (geometric_request(self._geometric_hash.seed),)

    def _dedup_window(self, need: int) -> int:
        """Sampled arrivals per ``np.unique`` pass when a morph is near.

        Sized to roughly twice the expected number of *sampled* arrivals
        until the next morph (each sets a new bit with probability
        zeros/m), clamped to [1024, BATCH_CHUNK]. Any window size is
        exact; this only tunes how much work overshoots a crossing.
        """
        zeros = self._bits.zeros
        if zeros <= 0:
            return BATCH_CHUNK
        expected = 2.0 * need * (self.m / zeros)
        return max(1024, min(BATCH_CHUNK, int(expected)))

    # analysis: allow(contract.plane-mismatch) -- positions deliberately
    # unrequested: only Step-1 survivors get position-hashed (see
    # plane_requests docstring); prefetching would hash every arrival.
    def _record_plane(self, plane: HashPlane) -> None:
        size = plane.size
        values = plane.values
        materialized = plane.materialized()
        if positions_request(self._position_hash.seed, self.m) in materialized:
            # Another consumer (a mirror, a prefetching pool) already
            # paid for the full position array: windows are gathers.
            full_positions = plane.positions(self._position_hash.seed, self.m)

            def positions_of(indices: np.ndarray) -> np.ndarray:
                return full_positions[indices]

        else:
            modulus = np.uint64(self.m)

            def positions_of(indices: np.ndarray) -> np.ndarray:
                return self._position_hash.hash_array(values[indices]) % modulus

        if geometric_request(self._geometric_hash.seed) in materialized:
            full_levels = plane.geometric(self._geometric_hash.seed)

            def levels_of(lo: int, hi: int) -> np.ndarray:
                return full_levels[lo:hi]

        else:
            # Hash levels per chunk: a chunk's intermediates stay
            # cache-resident across the splitmix64 passes, ~2× faster
            # than one full-width pass over a long stream.
            def levels_of(lo: int, hi: int) -> np.ndarray:
                return self._geometric_hash.value_array(values[lo:hi])

        start = 0
        # analysis: allow(purity.loop) -- chunk loop, O(size/BATCH_CHUNK)
        while start < size:
            chunk_start, chunk_end = start, min(size, start + BATCH_CHUNK)
            levels = None
            if self.r == 0:
                # Round 0 samples everything: the Step-1 comparison
                # G(d) >= 0 is vacuous, so skip reading the levels (the
                # hash op is still billed — the algorithm specifies it).
                sampled = np.arange(chunk_start, chunk_end, dtype=np.int64)
            else:
                levels = levels_of(chunk_start, chunk_end)
                sampled = chunk_start + np.flatnonzero(levels >= self.r)
            # analysis: allow(purity.loop) -- advances one *round* per
            # iteration; crossings are rare (at most m/T per stream)
            while start < chunk_end:
                if sampled.size == 0:
                    self.hash_ops += chunk_end - start
                    start = chunk_end
                    break
                start = self._consume_round(
                    positions_of, sampled, start, chunk_end
                )
                if start >= chunk_end:
                    break
                # A morph happened at `start`. The round-(r+1) sample
                # set is a subset of the round-r one, so the chunk's
                # candidates narrow incrementally; crossings are rare
                # (at most m/T per stream), so this refilter is cheap.
                if levels is None:
                    levels = levels_of(chunk_start, chunk_end)
                tail = sampled[np.searchsorted(sampled, start):]
                sampled = tail[levels[tail - chunk_start] >= self.r]
        sink = self._obs_sink
        if sink is not None:
            sink.update(self)

    def _consume_round(
        self,
        positions_of: Callable[[np.ndarray], np.ndarray],
        sampled: np.ndarray,
        start: int,
        size: int,
    ) -> int:
        """Apply the current round's sampled arrivals until it ends.

        ``sampled`` holds the stream indices in ``[start, size)`` that
        pass the current round's Step-1 filter (``size`` is the current
        chunk's end). Consumes arrivals until the chunk is exhausted
        (returns ``size``) or the round threshold is crossed — then
        morphs and returns the stream index right after the crossing
        arrival, whose remainder the caller refilters under the
        advanced round.
        """
        offset = 0  # consumed prefix of `sampled`
        while True:
            need = self.T - self.v
            remaining = sampled.size - offset
            if remaining < need:
                # Even if every remaining sampled arrival set a new bit
                # the round could not end: apply directly, no dedup
                # pass needed.
                self.v += self._bits.set_many(positions_of(sampled[offset:]))
                self.hash_ops += (size - start) + remaining
                self.bits_accessed += remaining
                return size
            # First occurrence of each position within the window
            # decides whether that arrival sets a new bit, exactly as
            # in the sequential semantics (order among *distinct*
            # positions cannot matter while the round is fixed).
            window = sampled[offset:offset + self._dedup_window(need)]
            window_positions = positions_of(window)
            unique, first_idx = np.unique(window_positions, return_index=True)
            new_first = first_idx[~self._bits.test_many(unique)]
            if new_first.size < need:
                # The whole window stays inside the current round.
                self._bits.set_many(unique)
                self.v += new_first.size
                consumed = int(window[-1]) + 1
                self.hash_ops += (consumed - start) + window.size
                self.bits_accessed += window.size
                start = consumed
                offset += window.size
                continue
            # The round threshold is crossed at the `need`-th new bit.
            # Consume the stream exactly up to and including the
            # crossing arrival and morph; the caller reprocesses the
            # remainder under the advanced round (new Step-1 filter).
            cut = int(np.partition(new_first, need - 1)[need - 1])
            self._bits.set_many(window_positions[:cut + 1])
            self.r += 1
            self.v = 0
            consumed = int(window[cut]) + 1
            self.hash_ops += (consumed - start) + cut + 1
            self.bits_accessed += cut + 1
            return consumed

    # ------------------------------------------------------------------
    # Querying (Algorithm 2)
    # ------------------------------------------------------------------
    def query(self) -> float:
        self.bits_accessed += 32  # the paper's accounting: read r and v
        # Snapshot the counters once. A lock-light concurrent reader
        # (the serving layer's ESTIMATE path) may race a morph, whose
        # writer does `r += 1; v = 0`: re-reading the attributes (the
        # old `saturated` / `logical_bits` property chain) could pass
        # the saturation check with one (r, v) pair and then evaluate
        # ln(1 - v/m_r) with a mixed pair whose argument is <= 0. One
        # snapshot makes the check and the formula agree: v < m_r holds
        # below, so the log argument stays positive — a torn pair costs
        # at most one round of transient bias, never an exception.
        r = self.r
        v = self.v
        if r * self.T + v >= self.m:  # saturated under this snapshot
            return self.max_estimate()
        m_r = self.m - r * self.T
        return float(self._s[r]) - math.ldexp(self.m, r) * math.log(
            1.0 - v / m_r
        )

    def estimate_at(self, r: int, v: int) -> float:
        """The estimate Algorithm 2 would return for counters (r, v).

        Exposed for the theory module (Theorem 3 needs the inverse map
        from target estimates back to counter values) and for tests.
        """
        if not 0 <= r < len(self._s):
            raise ValueError(f"round {r} out of range for this configuration")
        m_r = self.m - r * self.T
        if not 0 <= v < m_r:
            raise ValueError(f"v={v} out of range for round {r} (m_r={m_r})")
        return float(self._s[r]) - math.ldexp(self.m, r) * math.log(1.0 - v / m_r)

    def max_estimate(self) -> float:
        """Largest finite estimate (§III-B): the last round one bit short.

        With ``m`` divisible by ``T`` this is the paper's ``r = m/T - 1``,
        ``v = T - 1`` configuration, which exceeds MRB's maximum at equal
        memory when component sizes match (2^{k-1}·m·ln T  vs
        2^{k-1}·(m/k)·ln(m/k)). Otherwise the last (partial) round of
        ``m mod T`` logical bits extends the range one sampling level
        further.
        """
        last = self.max_rounds - 1 if self.m % self.T == 0 else self.max_rounds
        m_last = self.m - last * self.T
        return float(self._s[last]) + math.ldexp(self.m, last) * math.log(m_last)

    def memory_bits(self) -> int:
        # The paper's accounting: the m-bit array plus the r and v
        # counters, which need 6 + 26 bits (§III-B).
        return self.m + 32

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    def merge(self, other: CardinalityEstimator) -> None:
        raise NotImplementedError(
            "SelfMorphingBitmap cannot merge: the morphing schedule depends "
            "on arrival order, so two SMBs' logical bitmaps are not aligned. "
            "Use HyperLogLog/MRB when distributed merging is required."
        )

    def to_bytes(self) -> bytes:
        header = _HEADER.pack(_MAGIC, self.m, self.T, self.seed, self.r, self.v)
        return header + self._bits.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SelfMorphingBitmap":
        magic, m, t, seed, r, v = unpack_header(
            _HEADER, data, "SelfMorphingBitmap"
        )
        if magic != _MAGIC:
            raise ValueError("not a serialized SelfMorphingBitmap")
        smb = cls(m, threshold=t, seed=seed)
        smb.r = r
        smb.v = v
        # BitVector.from_bytes enforces exact consumption of the rest.
        smb._bits = BitVector.from_bytes(data[_HEADER.size:])
        if len(smb._bits) != m:
            raise ValueError("corrupt SelfMorphingBitmap payload: size mismatch")
        if smb._bits.ones != r * t + v:
            # ones == r*T + v is an invariant of Algorithm 1.
            raise ValueError(
                "corrupt SelfMorphingBitmap payload: ones != r*T + v"
            )
        return smb

    def __repr__(self) -> str:
        return (
            f"SelfMorphingBitmap(m={self.m}, T={self.T}, r={self.r}, "
            f"v={self.v}, p={self.sampling_probability})"
        )
