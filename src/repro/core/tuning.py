"""Parameter tuning: the paper's Table II (optimal SMB threshold T) and
Table III (recommended MRB dimensioning).

**SMB threshold (§IV-B).** The paper derives the optimal integer ratio
``m/T`` by numerical computing: among all ratios whose estimation range
accommodates the design cardinality, pick the one maximizing the
Theorem-3 bound β. :func:`optimal_threshold` implements exactly that
search; :func:`optimal_threshold_table` regenerates Table II for any
grid of (m, n).

**MRB dimensioning (Table III).** The paper ships a lookup table of
``(m/k, k)`` recommended by the MRB authors for each memory budget and
expected cardinality; we embed the table verbatim and fall back to
Estan-style analytic dimensioning (smallest k whose estimation range
covers n) for budgets the table does not list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.smb import round_constants
from repro.core.theory import smb_error_bound

#: Default δ at which β is maximized when choosing T (the paper's Fig. 5
#: anchors use δ = 0.1).
DEFAULT_DELTA = 0.1

#: Safety factor: the chosen configuration's estimation range must cover
#: the design cardinality with headroom.
RANGE_HEADROOM = 2.0


def smb_max_estimate(memory_bits: int, threshold: int) -> float:
    """Largest finite estimate of an (m, T) SMB (§III-B)."""
    m, t = int(memory_bits), int(threshold)
    s = round_constants(m, t)
    last = m // t - 1 if m % t == 0 else m // t
    m_last = m - last * t
    return float(s[last]) + math.ldexp(m, last) * math.log(max(1, m_last))


def optimal_threshold(
    memory_bits: int,
    design_cardinality: int,
    delta: float = DEFAULT_DELTA,
) -> int:
    """Optimal SMB threshold T for an m-bit budget and design cardinality.

    Implements the paper's §IV-B procedure: search integer ratios
    ``m/T``, keep those whose range covers ``design_cardinality`` (with
    headroom), and maximize the Theorem-3 β at the given δ. A
    configuration chosen for cardinality ``n`` is also valid for any
    smaller stream (the paper notes the optimum for ``n = n_max``
    applies to ``n ∈ [0, n_max]``).
    """
    m = int(memory_bits)
    n = int(design_cardinality)
    if m < 4:
        raise ValueError(f"memory_bits must be >= 4, got {m}")
    if n < 1:
        raise ValueError(f"design_cardinality must be >= 1, got {n}")
    best_t = None
    best_beta = -1.0
    fallback_t = None  # largest-range config, used if nothing covers n
    fallback_range = -1.0
    for ratio in range(2, min(m, 512) + 1):
        t = m // ratio
        if t < 1:
            break
        if m // t != ratio:  # skip duplicate T values
            continue
        reach = smb_max_estimate(m, t)
        if reach > fallback_range:
            fallback_range, fallback_t = reach, t
        if reach < RANGE_HEADROOM * n:
            continue
        beta = smb_error_bound(delta, n, m, t)
        if beta > best_beta:
            best_beta, best_t = beta, t
    if best_t is None:
        # No ratio covers n: the budget is simply too small; return the
        # configuration with the largest range (clamped estimates).
        assert fallback_t is not None
        return fallback_t
    return best_t


def optimal_threshold_table(
    memory_grid: list[int] | None = None,
    cardinality_grid: list[int] | None = None,
    delta: float = DEFAULT_DELTA,
) -> dict[tuple[int, int], int]:
    """Regenerate the paper's Table II: optimal m/T per (m, n).

    Returns ``{(m, n): T}``. Defaults to the paper's grid: m ∈ {1000,
    2500, 5000, 10000}, n from 80k to 1M.
    """
    ms = memory_grid or [10_000, 5_000, 2_500, 1_000]
    ns = cardinality_grid or [
        1_000_000, 900_000, 800_000, 700_000, 600_000,
        500_000, 400_000, 300_000, 200_000, 100_000, 80_000,
    ]
    return {
        (m, n): optimal_threshold(m, n, delta=delta) for m in ms for n in ns
    }


@dataclass(frozen=True)
class MRBParameters:
    """An MRB dimensioning: component size m/k and component count k."""

    component_bits: int
    num_components: int

    @property
    def total_bits(self) -> int:
        return self.component_bits * self.num_components


#: Table III of the paper: {(memory m, cardinality n): (m/k, k)}.
#: Rows are the paper's cardinality grid; columns its memory budgets.
TABLE_III: dict[tuple[int, int], MRBParameters] = {
    (m, n): MRBParameters(b, k)
    for n, per_memory in {
        1_000_000: {10_000: (909, 11), 5_000: (416, 12), 2_500: (178, 14), 1_000: (66, 15)},
        900_000: {10_000: (909, 11), 5_000: (416, 12), 2_500: (192, 13), 1_000: (66, 15)},
        800_000: {10_000: (909, 11), 5_000: (416, 12), 2_500: (192, 13), 1_000: (66, 15)},
        700_000: {10_000: (909, 11), 5_000: (416, 12), 2_500: (192, 13), 1_000: (71, 14)},
        600_000: {10_000: (1000, 10), 5_000: (416, 12), 2_500: (192, 13), 1_000: (71, 14)},
        500_000: {10_000: (1000, 10), 5_000: (454, 11), 2_500: (208, 12), 1_000: (71, 14)},
        400_000: {10_000: (1000, 10), 5_000: (454, 11), 2_500: (208, 12), 1_000: (71, 14)},
        300_000: {10_000: (1111, 9), 5_000: (500, 10), 2_500: (208, 12), 1_000: (76, 13)},
        200_000: {10_000: (1111, 9), 5_000: (500, 10), 2_500: (227, 11), 1_000: (83, 12)},
        100_000: {10_000: (1428, 7), 5_000: (555, 9), 2_500: (250, 10), 1_000: (90, 11)},
        80_000: {10_000: (1428, 7), 5_000: (625, 8), 2_500: (277, 9), 1_000: (90, 11)},
    }.items()
    for m, (b, k) in per_memory.items()
}

_TABLE_MEMORIES = sorted({m for m, __ in TABLE_III})
_TABLE_CARDINALITIES = sorted({n for __, n in TABLE_III})


def _analytic_mrb_parameters(memory_bits: int, n: int) -> MRBParameters:
    """Estan-style fallback: smallest k whose range covers n with margin."""
    m = int(memory_bits)
    for k in range(3, 33):
        b = m // k
        if b < 8:
            break
        # MRB's maximum estimate is 2^{k-1}·b·ln b (§II-B); require 2x
        # headroom so the top component is not the working one.
        if math.ldexp(b * math.log(b), k - 1) >= RANGE_HEADROOM * n:
            return MRBParameters(b, k)
    # Budget cannot cover n: use the widest-range sane configuration.
    k = max(3, min(32, m // 8))
    return MRBParameters(m // k, k)


def mrb_parameters(memory_bits: int, expected_cardinality: int) -> MRBParameters:
    """MRB dimensioning per the paper's Table III.

    Exact lookups for the paper's (m, n) grid; for other budgets the
    analytic fallback reproduces the same dimensioning rule.
    """
    m, n = int(memory_bits), int(expected_cardinality)
    if m < 24:
        raise ValueError(f"memory_bits must be >= 24 for MRB, got {m}")
    if n < 1:
        raise ValueError(f"expected_cardinality must be >= 1, got {n}")
    if m in _TABLE_MEMORIES:
        # Smallest tabulated cardinality that still covers n.
        for n_row in _TABLE_CARDINALITIES:
            if n_row >= n:
                return TABLE_III[(m, n_row)]
        return TABLE_III[(m, _TABLE_CARDINALITIES[-1])]
    return _analytic_mrb_parameters(m, n)
