"""Theoretical error bounds (§IV and Fig. 5 of the paper).

**SMB (Theorem 3).** The recording process is a sum of independent
geometric random variables: ``X_i^j`` counts the distinct arrivals
needed to push the round-``i`` ones count from ``j-1`` to ``j``, with
success probability ``(m_i - j + 1) / (2^i · m)`` (eq. (14)). Janson's
tail bounds for sums of geometrics give

    Pr(|n - n̂| / n >= δ) <= e^{-p* n (δ - ln(1+δ))} + e^{-p* n (-δ - ln(1-δ))}

where ``p*`` is the smallest success probability among the variables,
reached by the last bit of the last round:

    p* = (m_r - U_r + 1) / (2^r · m).

The worst-case (r, U_r) for a given target cardinality follows the
theorem: ``r`` is the largest round with ``n(1+δ) >= S[r]`` and ``U_r``
the largest ones count reachable by an estimate of ``n(1+δ)``. Using
the second-order Taylor expansion ``±δ - ln(1±δ) ≈ δ²/2`` collapses the
two exponentials into the paper's single ``2e^{-p* n δ²/2}`` form;
both variants are available (``exact=``).

**MRB (Fig. 5b).** The paper bounds MRB through Chebyshev on its
standard error. We derive the standard error from first principles: the
estimate sums per-component linear-counting estimates whose variances
are Whang et al.'s ``b (e^ρ - ρ - 1)`` at fill ``ρ``, scaled by the
base sampling factor.

**HLL++ (Fig. 5b).** Chebyshev on the published standard error
``1.04 / sqrt(t)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.smb import round_constants


def _worst_case_counters(
    n: float, memory_bits: int, threshold: int, delta: float
) -> tuple[int, int]:
    """The Theorem-3 worst-case (r, U_r) for target cardinality n."""
    m, t = int(memory_bits), int(threshold)
    s = round_constants(m, t)
    target = n * (1.0 + delta)
    # r: the largest round index whose prefix estimate stays below target.
    r = 0
    for candidate in range(len(s) - 1, -1, -1):
        if math.isfinite(s[candidate]) and s[candidate] <= target:
            r = candidate
            break
    m_r = m - r * t
    if m_r <= 0:
        return r, t
    # U_r: largest ones count with estimate(r, U_r) <= target, capped at
    # T (eq. below Theorem 3) and at the logical bitmap size.
    budget = (target - s[r]) / math.ldexp(m, r)
    u_r = int(math.floor(m_r * (1.0 - math.exp(-budget))))
    return r, max(0, min(u_r, t, m_r - 1))


def smb_error_bound(
    delta: float,
    n: float,
    memory_bits: int,
    threshold: int,
    exact: bool = False,
) -> float:
    """Theorem 3: β = Pr(|n - n̂|/n <= δ) for an SMB configuration.

    Parameters
    ----------
    delta:
        Relative-error tolerance δ ∈ (0, 1).
    n:
        True stream cardinality.
    memory_bits, threshold:
        The SMB configuration (m, T).
    exact:
        Use the exact Janson exponents instead of the paper's δ²/2
        Taylor form.

    Returns the probability lower bound β (clamped to [0, 1]).
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    m, t = int(memory_bits), int(threshold)
    r, u_r = _worst_case_counters(n, m, t, delta)
    m_r = m - r * t
    if m_r <= 0:
        return 0.0
    p_star = (m_r - u_r + 1) / math.ldexp(m, r)
    if exact:
        upper = math.exp(-p_star * n * (delta - math.log1p(delta)))
        lower = math.exp(-p_star * n * (-delta - math.log1p(-delta)))
        beta = 1.0 - upper - lower
    else:
        beta = 1.0 - 2.0 * math.exp(-p_star * n * delta * delta / 2.0)
    return max(0.0, min(1.0, beta))


def _linear_counting_variance(bits: int, load: float) -> float:
    """Whang et al.'s variance of the b-bit linear counter at fill ρ.

    ``Var(n̂) ≈ b (e^ρ - ρ - 1)`` where ``ρ = n / b``. For loads past
    saturation the variance formula explodes, which correctly penalizes
    configurations that overfill a component.
    """
    return bits * (math.exp(load) - load - 1.0)


def mrb_standard_error(
    n: float, component_bits: int, num_components: int
) -> float:
    """Standard error σ(n̂/n) of MRB for a stream of cardinality n.

    Derived by summing the per-component linear-counting variances at
    their expected fills (component j receives ``n·2^-(j+1)`` distinct
    items, the last one ``n·2^-(k-1)``) above the expected base level,
    scaling by the base sampling factor 2^base, and adding the binomial
    sampling variance of which items reach the base level at all:
    ``Var ≈ n·(2^base - 1)`` (an unbiased 2^-base sample scaled back up).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    b, k = int(component_bits), int(num_components)
    # Expected distinct items per component.
    arrivals = [n / 2.0 ** min(j + 1, k - 1) for j in range(k)]
    # Expected base: the finest component whose fill stays below ~90%.
    base = k - 1
    for j in range(k):
        expected_fill = 1.0 - math.exp(-arrivals[j] / b)
        if expected_fill <= 0.9:
            base = j
            break
    counting_variance = sum(
        _linear_counting_variance(b, min(arrivals[j] / b, 30.0))
        for j in range(base, k)
    )
    sampling_variance = n * (math.ldexp(1.0, base) - 1.0)
    total = math.ldexp(counting_variance, 2 * base) + sampling_variance
    return math.sqrt(total) / n


def mrb_error_bound(
    delta: float, n: float, component_bits: int, num_components: int
) -> float:
    """Chebyshev bound β for MRB (Fig. 5b)."""
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    sigma = mrb_standard_error(n, component_bits, num_components)
    return max(0.0, min(1.0, 1.0 - (sigma / delta) ** 2))


def hll_standard_error(num_registers: int) -> float:
    """HLL++'s published standard error 1.04/√t."""
    if num_registers <= 0:
        raise ValueError(f"num_registers must be positive, got {num_registers}")
    return 1.04 / math.sqrt(num_registers)


def hll_error_bound(delta: float, memory_bits: int) -> float:
    """Chebyshev bound β for HLL++ at an m-bit budget (t = m/5)."""
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    sigma = hll_standard_error(int(memory_bits) // 5)
    return max(0.0, min(1.0, 1.0 - (sigma / delta) ** 2))


def smb_round_loads(
    n: float, memory_bits: int, threshold: int
) -> tuple[int, float]:
    """Expected terminal (round r, ones count v) for a stream of size n.

    Inverts the S array: r is the last round whose prefix estimate stays
    below n, and v makes the round-r estimate account for the rest.
    """
    m, t = int(memory_bits), int(threshold)
    s = round_constants(m, t)
    r = 0
    for candidate in range(len(s) - 1, -1, -1):
        if math.isfinite(s[candidate]) and s[candidate] <= n:
            r = candidate
            break
    m_r = m - r * t
    if m_r <= 0:
        return r, 0.0
    budget = (n - s[r]) / math.ldexp(m, r)
    v = m_r * (1.0 - math.exp(-budget))
    return r, min(v, float(t))


def smb_standard_error(
    n: float, memory_bits: int, threshold: int
) -> float:
    """Delta-method standard error σ(n̂/n) of SMB.

    Complements Theorem 3's tail bound with a variance model: the
    estimate sums per-round linear-counting estimates over the logical
    bitmaps, each scaled by ``2^i · m/m_i``, plus the binomial sampling
    variance of which items survive Step 1 in the terminal round
    (``≈ n(2^r − 1)``, the analogue of MRB's base-sampling term).
    Round ``i``'s linear counter has ``m_i`` bits and absorbs
    ``ρ_i = -ln(1 − U_i/m_i)`` load, giving Whang variance
    ``m_i (e^{ρ_i} − ρ_i − 1)``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    m, t = int(memory_bits), int(threshold)
    r, v = smb_round_loads(n, m, t)
    variance = 0.0
    for i in range(r + 1):
        m_i = m - i * t
        if m_i <= 0:
            break
        ones = t if i < r else v
        fill = min(ones / m_i, 1.0 - 1.0 / m_i)
        load = -math.log(1.0 - fill)
        scale = math.ldexp(m / m_i, i)  # 2^i · m/m_i
        variance += scale * scale * _linear_counting_variance(m_i, load)
    variance += n * (math.ldexp(1.0, r) - 1.0)
    return math.sqrt(variance) / n


def beta_curve(
    deltas: np.ndarray | list[float],
    n: float,
    memory_bits: int,
    threshold: int,
    exact: bool = False,
) -> np.ndarray:
    """Vector form of :func:`smb_error_bound` over a δ grid (Fig. 5a)."""
    return np.asarray(
        [
            smb_error_bound(float(d), n, memory_bits, threshold, exact=exact)
            for d in np.asarray(deltas, dtype=np.float64)
        ]
    )
