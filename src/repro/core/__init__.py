"""Core package: the paper's contribution (SMB) plus theory and tuning."""
