"""The ``repro engine`` subcommand: run the sharded ingestion engine.

Drives a synthetic (optionally duplicated) stream through a
:class:`~repro.engine.pipeline.IngestPipeline` over a
:class:`~repro.engine.shards.ShardPool`, reports throughput and
estimation accuracy, and optionally checkpoints/restores the pool::

    repro engine --estimator SMB --shards 4 --items 1000000
    repro engine --shards 8 --workers 4 --items 4000000
    repro engine --shards 8 --checkpoint pool.ckpt
    repro engine --restore pool.ckpt --items 500000
    repro engine --metrics-out metrics.json --metrics-interval 5
    repro engine --checkpoint-dir ckpts --checkpoint-every 250000
    repro engine --checkpoint-dir ckpts --resume

``--checkpoint-dir`` puts the run under a
:class:`~repro.engine.recovery.CheckpointManager`: periodic safe-point
checkpoints every ``--checkpoint-every`` records, generation rotation
with ``--keep``, and a final generation at the end of the run whose
metadata records the absolute stream offset. After a crash,
``--resume`` (with the *same* ``--items/--duplication/--seed``)
restores the newest valid generation and replays only the remainder of
the deterministic stream — the finished estimate matches the
uninterrupted run's. The ``REPRO_FAULTS`` environment variable arms
:mod:`repro.testing.faults` failpoints inside the run (crash/resume
smoke only; see docs/recovery.md).

``--metrics-out`` enables the :mod:`repro.obs` registry for the run and
writes a JSON metrics snapshot (pipeline counters and latencies,
per-shard SMB adaptivity signals, checkpoint timings) to the given
path; with ``--metrics-interval`` a background thread refreshes the
snapshot periodically during long ingests. Render a snapshot with
``repro stats``.

Dispatched from the main :mod:`repro.cli` entry point (``repro engine
...``); the experiment ids remain available alongside it.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.bench.runner import ALL_ESTIMATORS
from repro.engine.checkpoint import load, save
from repro.engine.pipeline import DEFAULT_CHUNK, IngestPipeline
from repro.engine.recovery import CheckpointManager, RecoveryError
from repro.engine.shards import ShardPool
from repro.streams import distinct_items, stream_with_duplicates

#: Estimator display names the engine accepts. Every entry of the bench
#: registry serializes, so every entry is checkpointable.
ENGINE_ESTIMATORS = ALL_ESTIMATORS


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro engine`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro engine",
        description=(
            "Sharded concurrent ingestion: partition a stream across K "
            "estimator shards, ingest through a backpressured pipeline, "
            "and report throughput and accuracy."
        ),
    )
    parser.add_argument(
        "--estimator", default="SMB", choices=sorted(ENGINE_ESTIMATORS),
        help="estimator type per shard (default: SMB)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, metavar="K",
        help="number of hash shards (default: 4)",
    )
    parser.add_argument(
        "--memory-bits", type=int, default=20_000, metavar="M",
        help="total memory budget, divided across shards (default: 20000)",
    )
    parser.add_argument(
        "--items", type=int, default=100_000, metavar="N",
        help="distinct items in the synthetic stream (default: 100000)",
    )
    parser.add_argument(
        "--duplication", type=float, default=1.0, metavar="F",
        help="stream length as a multiple of N, >= 1 (default: 1.0)",
    )
    parser.add_argument(
        "--design-cardinality", type=int, default=1_000_000, metavar="N*",
        help="cardinality the shards are provisioned for (default: 1e6)",
    )
    parser.add_argument(
        "--chunk", type=int, default=DEFAULT_CHUNK, metavar="C",
        help=f"pipeline chunk size (default: {DEFAULT_CHUNK})",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=8, metavar="D",
        help="per-shard queue bound, in sub-batches (default: 8)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="W",
        help="ingest through W shard worker processes with shared-memory "
        "estimator planes instead of in-process threads (default: 0 = "
        "threaded; see docs/parallel.md)",
    )
    parser.add_argument("--seed", type=int, default=0, help="pool seed")
    parser.add_argument(
        "--checkpoint", metavar="FILE",
        help="write an atomic pool checkpoint to FILE after ingesting",
    )
    parser.add_argument(
        "--restore", metavar="FILE",
        help="restore the pool from FILE before ingesting "
        "(overrides --estimator/--shards/--memory-bits)",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="manage rotating, crash-recoverable checkpoint generations "
        "in DIR (see docs/recovery.md)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="with --checkpoint-dir: checkpoint at a safe point every N "
        "ingested records (default: only at the end of the run)",
    )
    parser.add_argument(
        "--keep", type=int, default=3, metavar="G",
        help="with --checkpoint-dir: checkpoint generations to retain "
        "(default: 3)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore the newest valid generation from --checkpoint-dir "
        "and ingest only the not-yet-checkpointed remainder of the "
        "stream (requires the same --items/--duplication/--seed as the "
        "interrupted run)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="enable repro.obs for this run and write a JSON metrics "
        "snapshot to FILE (render it with 'repro stats FILE')",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=0.0, metavar="SECONDS",
        help="with --metrics-out: refresh the snapshot every SECONDS "
        "during ingestion (default: final snapshot only)",
    )
    return parser


def engine_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro engine``; returns the process exit code.

    With ``--metrics-out`` the :mod:`repro.obs` registry is enabled for
    the duration of the run (and restored afterwards, so in-process
    callers are unaffected).
    """
    args = build_parser().parse_args(argv)
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.duplication < 1.0:
        raise SystemExit("--duplication must be >= 1.0")
    if args.metrics_interval < 0:
        raise SystemExit("--metrics-interval must be >= 0")
    if args.metrics_interval and not args.metrics_out:
        raise SystemExit("--metrics-interval requires --metrics-out")
    if args.workers < 0:
        raise SystemExit("--workers must be >= 0")
    if args.keep < 1:
        raise SystemExit("--keep must be >= 1")
    if args.checkpoint_every < 0:
        raise SystemExit("--checkpoint-every must be >= 0")
    if args.checkpoint_every and not args.checkpoint_dir:
        raise SystemExit("--checkpoint-every requires --checkpoint-dir")
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.resume and args.restore:
        raise SystemExit("--resume and --restore are mutually exclusive")

    from repro.testing.faults import NullFaultPlan, arm_from_env, set_plan

    fault_spec = os.environ.get("REPRO_FAULTS")
    armed_plan = arm_from_env(fault_spec)

    if args.metrics_out:
        from repro.obs import MetricsRegistry, set_registry

        previous_registry = set_registry(MetricsRegistry())
    else:
        previous_registry = None
    try:
        return _run(args)
    finally:
        if armed_plan is not None:
            set_plan(NullFaultPlan())
        if previous_registry is not None:
            from repro.obs import set_registry

            set_registry(previous_registry)


def _run(args: "argparse.Namespace") -> int:
    """Run one engine ingest with parsed arguments (see :func:`engine_main`)."""
    from repro.bench.reporting import format_table

    manager = None
    skip = 0
    if args.checkpoint_dir:
        manager = CheckpointManager(args.checkpoint_dir, keep=args.keep)

    if args.resume:
        assert manager is not None  # --resume requires --checkpoint-dir
        try:
            pool, generation = manager.load_latest()
        except RecoveryError as exc:
            raise SystemExit(f"cannot resume from {args.checkpoint_dir}: {exc}")
        if not isinstance(pool, ShardPool):
            raise SystemExit(
                f"generation {generation.generation} holds a "
                f"{type(pool).__name__}, not a ShardPool"
            )
        skip = int(generation.meta.get("records_ingested", 0))
        print(
            f"resumed generation {generation.generation} from "
            f"{args.checkpoint_dir} (records already ingested: {skip})"
        )
    elif args.restore:
        try:
            pool = load(args.restore)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot restore {args.restore}: {exc}")
        if not isinstance(pool, ShardPool):
            raise SystemExit(
                f"{args.restore} holds a "
                f"{type(pool).__name__}, not a ShardPool"
            )
        print(f"restored {pool!r} from {args.restore}")
    else:
        pool = ShardPool.of(
            args.estimator,
            args.memory_bits,
            args.shards,
            design_cardinality=args.design_cardinality,
            seed=args.seed,
        )
        assert isinstance(pool, ShardPool)  # thread backend (no workers)

    length = int(round(args.items * args.duplication))
    if length > args.items:
        stream = stream_with_duplicates(
            args.items, length, seed=args.seed + 1
        )
    else:
        stream = distinct_items(args.items, seed=args.seed + 1)
    if skip:
        # The stream is deterministic in (--items, --duplication,
        # --seed): dropping the already-checkpointed prefix replays
        # exactly the records the interrupted run lost.
        skip = min(skip, stream.size)
        stream = stream[skip:]

    baseline = pool.query()  # non-zero after a --restore / --resume
    start = time.perf_counter()
    with IngestPipeline(
        pool, chunk_size=args.chunk, queue_depth=args.queue_depth,
        checkpoint_manager=manager, checkpoint_every=args.checkpoint_every,
        workers=args.workers,
    ) as pipeline:
        pipeline.checkpoint_meta = lambda: {
            "records_ingested": skip + pipeline.records_submitted,
        }
        if args.metrics_out and args.metrics_interval > 0:
            from repro.obs import PeriodicSnapshotter, get_registry

            snapshotter = PeriodicSnapshotter(
                get_registry(),
                args.metrics_out,
                interval=args.metrics_interval,
                refresh=pipeline.pool_observer.update
                if pipeline.pool_observer is not None else None,
            ).start()
        else:
            snapshotter = None
        try:
            pipeline.submit(stream)
            pipeline.drain()
        finally:
            if snapshotter is not None:
                snapshotter.stop()
        elapsed = time.perf_counter() - start
        # Ask the pipeline, not the pool: with --workers the template
        # pool is stale until the backend syncs shard state back.
        estimate = pipeline.query_live()
        if manager is not None:
            final = pipeline.checkpoint_now()
            print(
                f"checkpointed generation {final.generation} to "
                f"{args.checkpoint_dir} "
                f"(records ingested: {final.meta['records_ingested']})"
            )

    records_per_second = stream.size / elapsed if elapsed > 0 else float("inf")
    new_distinct = args.items
    rows = [
        ["shards", pool.num_shards],
        ["shard estimator", type(pool.shards[0]).__name__],
        ["memory bits (total)", pool.memory_bits()],
        ["records ingested", stream.size],
        ["distinct (this run)", new_distinct],
        ["elapsed seconds", round(elapsed, 4)],
        ["records/sec", int(records_per_second)],
        ["estimate before", round(baseline, 1)],
        ["estimate after", round(estimate, 1)],
        ["delta estimate", round(estimate - baseline, 1)],
    ]
    if skip:
        # A resumed run's delta only covers the replayed remainder; the
        # meaningful accuracy check is the absolute estimate against
        # the full stream's distinct count.
        rows.append(
            ["rel error (estimate vs distinct)",
             round(abs(estimate - new_distinct) / new_distinct, 5)
             if new_distinct else "n/a"]
        )
    else:
        rows.append(
            ["rel error (delta vs distinct)",
             round(abs((estimate - baseline) - new_distinct) / new_distinct, 5)
             if new_distinct else "n/a"]
        )
    print(format_table(["metric", "value"], rows, title="engine run"))

    if args.checkpoint:
        try:
            written = save(pool, args.checkpoint)
        except OSError as exc:
            raise SystemExit(f"cannot checkpoint to {args.checkpoint}: {exc}")
        print(f"checkpointed pool to {args.checkpoint} ({written} bytes)")

    if args.metrics_out:
        from repro.obs import get_registry, write_snapshot

        try:
            write_snapshot(
                get_registry(),
                args.metrics_out,
                run={
                    "records_submitted": pipeline.records_submitted,
                    "records_dropped": pipeline.records_dropped,
                    "distinct_items": int(new_distinct),
                    "elapsed_seconds": elapsed,
                    "estimate": estimate,
                    "shards": pool.num_shards,
                },
            )
        except OSError as exc:
            raise SystemExit(
                f"cannot write metrics to {args.metrics_out}: {exc}"
            )
        print(f"wrote metrics snapshot to {args.metrics_out}")
    return 0
