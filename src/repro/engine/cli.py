"""The ``repro engine`` subcommand: run the sharded ingestion engine.

Drives a synthetic (optionally duplicated) stream through a
:class:`~repro.engine.pipeline.IngestPipeline` over a
:class:`~repro.engine.shards.ShardPool`, reports throughput and
estimation accuracy, and optionally checkpoints/restores the pool::

    repro engine --estimator SMB --shards 4 --items 1000000
    repro engine --shards 8 --checkpoint pool.ckpt
    repro engine --restore pool.ckpt --items 500000
    repro engine --metrics-out metrics.json --metrics-interval 5

``--metrics-out`` enables the :mod:`repro.obs` registry for the run and
writes a JSON metrics snapshot (pipeline counters and latencies,
per-shard SMB adaptivity signals, checkpoint timings) to the given
path; with ``--metrics-interval`` a background thread refreshes the
snapshot periodically during long ingests. Render a snapshot with
``repro stats``.

Dispatched from the main :mod:`repro.cli` entry point (``repro engine
...``); the experiment ids remain available alongside it.
"""

from __future__ import annotations

import argparse
import time

from repro.bench.runner import ALL_ESTIMATORS
from repro.engine.checkpoint import load, save
from repro.engine.pipeline import DEFAULT_CHUNK, IngestPipeline
from repro.engine.shards import ShardPool
from repro.streams import distinct_items, stream_with_duplicates

#: Estimator display names the engine accepts. Every entry of the bench
#: registry serializes, so every entry is checkpointable.
ENGINE_ESTIMATORS = ALL_ESTIMATORS


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro engine`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro engine",
        description=(
            "Sharded concurrent ingestion: partition a stream across K "
            "estimator shards, ingest through a backpressured pipeline, "
            "and report throughput and accuracy."
        ),
    )
    parser.add_argument(
        "--estimator", default="SMB", choices=sorted(ENGINE_ESTIMATORS),
        help="estimator type per shard (default: SMB)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, metavar="K",
        help="number of hash shards (default: 4)",
    )
    parser.add_argument(
        "--memory-bits", type=int, default=20_000, metavar="M",
        help="total memory budget, divided across shards (default: 20000)",
    )
    parser.add_argument(
        "--items", type=int, default=100_000, metavar="N",
        help="distinct items in the synthetic stream (default: 100000)",
    )
    parser.add_argument(
        "--duplication", type=float, default=1.0, metavar="F",
        help="stream length as a multiple of N, >= 1 (default: 1.0)",
    )
    parser.add_argument(
        "--design-cardinality", type=int, default=1_000_000, metavar="N*",
        help="cardinality the shards are provisioned for (default: 1e6)",
    )
    parser.add_argument(
        "--chunk", type=int, default=DEFAULT_CHUNK, metavar="C",
        help=f"pipeline chunk size (default: {DEFAULT_CHUNK})",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=8, metavar="D",
        help="per-shard queue bound, in sub-batches (default: 8)",
    )
    parser.add_argument("--seed", type=int, default=0, help="pool seed")
    parser.add_argument(
        "--checkpoint", metavar="FILE",
        help="write an atomic pool checkpoint to FILE after ingesting",
    )
    parser.add_argument(
        "--restore", metavar="FILE",
        help="restore the pool from FILE before ingesting "
        "(overrides --estimator/--shards/--memory-bits)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="enable repro.obs for this run and write a JSON metrics "
        "snapshot to FILE (render it with 'repro stats FILE')",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=0.0, metavar="SECONDS",
        help="with --metrics-out: refresh the snapshot every SECONDS "
        "during ingestion (default: final snapshot only)",
    )
    return parser


def engine_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro engine``; returns the process exit code.

    With ``--metrics-out`` the :mod:`repro.obs` registry is enabled for
    the duration of the run (and restored afterwards, so in-process
    callers are unaffected).
    """
    args = build_parser().parse_args(argv)
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.duplication < 1.0:
        raise SystemExit("--duplication must be >= 1.0")
    if args.metrics_interval < 0:
        raise SystemExit("--metrics-interval must be >= 0")
    if args.metrics_interval and not args.metrics_out:
        raise SystemExit("--metrics-interval requires --metrics-out")

    if args.metrics_out:
        from repro.obs import MetricsRegistry, set_registry

        previous_registry = set_registry(MetricsRegistry())
    else:
        previous_registry = None
    try:
        return _run(args)
    finally:
        if previous_registry is not None:
            from repro.obs import set_registry

            set_registry(previous_registry)


def _run(args: "argparse.Namespace") -> int:
    """Run one engine ingest with parsed arguments (see :func:`engine_main`)."""
    from repro.bench.reporting import format_table

    if args.restore:
        try:
            pool = load(args.restore)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot restore {args.restore}: {exc}")
        if not isinstance(pool, ShardPool):
            raise SystemExit(
                f"{args.restore} holds a "
                f"{type(pool).__name__}, not a ShardPool"
            )
        print(f"restored {pool!r} from {args.restore}")
    else:
        pool = ShardPool.of(
            args.estimator,
            args.memory_bits,
            args.shards,
            design_cardinality=args.design_cardinality,
            seed=args.seed,
        )

    length = int(round(args.items * args.duplication))
    if length > args.items:
        stream = stream_with_duplicates(
            args.items, length, seed=args.seed + 1
        )
    else:
        stream = distinct_items(args.items, seed=args.seed + 1)

    baseline = pool.query()  # non-zero after a --restore
    start = time.perf_counter()
    with IngestPipeline(
        pool, chunk_size=args.chunk, queue_depth=args.queue_depth
    ) as pipeline:
        if args.metrics_out and args.metrics_interval > 0:
            from repro.obs import PeriodicSnapshotter, get_registry

            snapshotter = PeriodicSnapshotter(
                get_registry(),
                args.metrics_out,
                interval=args.metrics_interval,
                refresh=pipeline.pool_observer.update
                if pipeline.pool_observer is not None else None,
            ).start()
        else:
            snapshotter = None
        try:
            pipeline.submit(stream)
            pipeline.drain()
        finally:
            if snapshotter is not None:
                snapshotter.stop()
        elapsed = time.perf_counter() - start
        estimate = pool.query()

    records_per_second = stream.size / elapsed if elapsed > 0 else float("inf")
    new_distinct = args.items
    rows = [
        ["shards", pool.num_shards],
        ["shard estimator", type(pool.shards[0]).__name__],
        ["memory bits (total)", pool.memory_bits()],
        ["records ingested", stream.size],
        ["distinct (this run)", new_distinct],
        ["elapsed seconds", round(elapsed, 4)],
        ["records/sec", int(records_per_second)],
        ["estimate before", round(baseline, 1)],
        ["estimate after", round(estimate, 1)],
        ["delta estimate", round(estimate - baseline, 1)],
        ["rel error (delta vs distinct)",
         round(abs((estimate - baseline) - new_distinct) / new_distinct, 5)
         if new_distinct else "n/a"],
    ]
    print(format_table(["metric", "value"], rows, title="engine run"))

    if args.checkpoint:
        try:
            written = save(pool, args.checkpoint)
        except OSError as exc:
            raise SystemExit(f"cannot checkpoint to {args.checkpoint}: {exc}")
        print(f"checkpointed pool to {args.checkpoint} ({written} bytes)")

    if args.metrics_out:
        from repro.obs import get_registry, write_snapshot

        try:
            write_snapshot(
                get_registry(),
                args.metrics_out,
                run={
                    "records_submitted": pipeline.records_submitted,
                    "records_dropped": pipeline.records_dropped,
                    "distinct_items": int(new_distinct),
                    "elapsed_seconds": elapsed,
                    "estimate": estimate,
                    "shards": pool.num_shards,
                },
            )
        except OSError as exc:
            raise SystemExit(
                f"cannot write metrics to {args.metrics_out}: {exc}"
            )
        print(f"wrote metrics snapshot to {args.metrics_out}")
    return 0
