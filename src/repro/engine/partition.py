"""Deterministic hash partitioning of item streams into disjoint shards.

The engine scales out by splitting the *item space* (not the arrival
sequence) across ``K`` shards with a seeded uniform hash: every distinct
item maps to exactly one shard, for the whole lifetime of the pool.
Consequences the rest of the engine relies on:

- the distinct-item sets seen by different shards are **disjoint**, so
  per-shard cardinalities are *exactly additive* — summing shard
  estimates is unbiased even for non-mergeable estimators such as SMB;
- duplicates of an item always land on the same shard, so per-shard
  duplicate-insensitivity (Theorem 2 for SMB) is preserved;
- partitioning is a pure function of ``(seed, item)``, so re-partitioning
  a replayed stream reproduces the same sub-streams bit for bit.

The partition hash is derived from a dedicated seed offset so it is
independent of every hash the estimators themselves use (position,
routing, geometric); correlating the two would skew per-shard loads.

Both a scalar path (:meth:`Partitioner.shard_of`) and a vectorized path
(:meth:`Partitioner.shard_ids`, :meth:`Partitioner.split`) are provided,
computing the same function — mirroring the library-wide scalar/batch
equivalence contract.
"""

from __future__ import annotations

import numpy as np

from repro.hashing import UniformHash, canonical_u64_array
from repro.kernels import HashPlane, positions_request
from repro.kernels.plane import PlaneRequest

#: Seed offset of the partition hash, distinct from every offset the
#: estimators use (SMB position 0x504F53, LogLog/HLL geometric 0x47454F),
#: so routing is independent of estimation.
ROUTE_SEED_OFFSET = 0x53484152  # "SHAR"


class Partitioner:
    """Deterministic hash partitioner over ``num_shards`` disjoint shards.

    Parameters
    ----------
    num_shards:
        Number of shards ``K`` (>= 1).
    seed:
        Pool seed; the partition hash uses ``seed + ROUTE_SEED_OFFSET``.

    With ``num_shards == 1`` partitioning degenerates to the identity and
    no hash is computed at all (in either path), so a single-shard pool
    adds no per-item overhead over the bare estimator.
    """

    __slots__ = ("num_shards", "seed", "_hash", "_num_shards_u64")

    def __init__(self, num_shards: int, seed: int = 0) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.seed = int(seed)
        self._hash = UniformHash(self.seed + ROUTE_SEED_OFFSET)
        self._num_shards_u64 = np.uint64(self.num_shards)

    def shard_of(self, value: int) -> int:
        """Shard index of one canonical uint64 value (scalar path)."""
        if self.num_shards == 1:
            return 0
        return self._hash.hash_u64(value) % self.num_shards

    def shard_ids(self, values: np.ndarray) -> np.ndarray:
        """Shard index of every value in a uint64 array (vectorized)."""
        if self.num_shards == 1:
            return np.zeros(values.size, dtype=np.uint64)
        return self._hash.hash_array(values) % self._num_shards_u64

    def split(self, values: np.ndarray) -> list[np.ndarray]:
        """Split a uint64 array into ``K`` disjoint per-shard sub-arrays.

        The within-shard arrival order of the input is preserved (a
        stable grouping), which is what makes sharded recording
        bit-for-bit equivalent to feeding each shard its sub-stream
        sequentially — required for order-sensitive estimators (SMB).
        """
        values = canonical_u64_array(values)
        if self.num_shards == 1:
            return [values]
        ids = self.shard_ids(values)
        if self.num_shards <= 32:
            # K vectorized compare-and-gather passes beat a stable sort
            # by ~2x up to a few dozen shards (measured on 1M items).
            return [
                values[ids == np.uint64(k)] for k in range(self.num_shards)
            ]
        # Large K: one stable sort groups by shard while preserving
        # arrival order within each shard.
        order = np.argsort(ids, kind="stable")
        grouped = values[order]
        boundaries = np.searchsorted(
            ids[order], np.arange(self.num_shards + 1, dtype=np.uint64)
        )
        return [
            grouped[boundaries[k]:boundaries[k + 1]]
            for k in range(self.num_shards)
        ]

    def plane_request(self) -> PlaneRequest:
        """The routing hash as a plane request (modulus ``num_shards``)."""
        return positions_request(self._hash.seed, self.num_shards)

    def split_plane(self, plane: HashPlane) -> list[HashPlane]:
        """Split a hash plane into ``K`` disjoint per-shard sub-planes.

        Same grouping (and the same stability guarantee) as
        :meth:`split`, but operating on a shared
        :class:`~repro.kernels.HashPlane`: the routing hash is read from
        the plane and every hash array already materialized on it is
        *gathered* into the sub-planes, so downstream shards never
        re-hash — the chunk is canonicalized and hashed exactly once no
        matter how many shards consume it.
        """
        if self.num_shards == 1:
            return [plane]
        ids = plane.positions(self._hash.seed, self.num_shards)
        if self.num_shards <= 32:
            return [
                plane.take(np.flatnonzero(ids == np.uint64(k)))
                for k in range(self.num_shards)
            ]
        order = np.argsort(ids, kind="stable")
        boundaries = np.searchsorted(
            ids[order], np.arange(self.num_shards + 1, dtype=np.uint64)
        )
        return [
            plane.take(order[boundaries[k]:boundaries[k + 1]])
            for k in range(self.num_shards)
        ]

    def __repr__(self) -> str:
        return f"Partitioner(num_shards={self.num_shards}, seed={self.seed})"
