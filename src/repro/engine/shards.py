"""A shard pool: one estimator per hash partition, additive queries.

:class:`ShardPool` holds ``K`` estimators and routes every item to
exactly one of them through a :class:`~repro.engine.partition.Partitioner`.
Because the partition assigns each *distinct item* to one shard, the
shards' distinct-item sets are disjoint and

    |stream| = Σ_k |sub-stream_k|

holds **exactly** — so summing the per-shard estimates is an unbiased
estimator of the total cardinality for *any* estimator type, including
SMB, which is not mergeable on overlapping streams (its morphing
schedule is arrival-order dependent; see ``repro.estimators.setops``).
Sharding is how an SMB deployment scales out despite non-mergeability.

For mergeable shard types (Bitmap, MRB, FM, LogLog family, HLL, KMV)
the pool additionally supports:

- :meth:`ShardPool.merge` — shard-wise union of two pools built over the
  same partition function (an item routes to the same shard in both
  pools, so per-shard unions stay disjoint across shards);
- :meth:`ShardPool.merged` — collapsing all shards into one sketch of
  the union stream, when every shard was built with identical
  parameters.

The pool is itself a :class:`~repro.estimators.base.CardinalityEstimator`
and honours the full library contract (scalar ≡ batch bit-for-bit,
duplicate insensitivity, serialization round-trips, instrumentation
counters), so it composes with the harness, the windowing sketches and
the checkpoint layer like any other estimator.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.estimators.base import CardinalityEstimator
from repro.engine.partition import Partitioner
from repro.kernels import HashPlane
from repro.kernels.plane import PlaneRequest

_HEADER = struct.Struct("<4sHIQ")  # magic, version, num_shards, seed
_SHARD_HEADER = struct.Struct("<BQ")  # class-name length, payload length
_MAGIC = b"POOL"
_VERSION = 1


def estimator_registry() -> dict[str, type[CardinalityEstimator]]:
    """Class-name → class map of every serializable estimator.

    Used by the pool (and the checkpoint layer) to reconstruct shard
    estimators from their serialized form: each shard blob fully encodes
    its own configuration, so restoring needs only the class.
    """
    from repro.core.smb import SelfMorphingBitmap
    from repro.estimators import (
        Bitmap,
        FMSketch,
        HyperLogLog,
        HyperLogLogPlusPlus,
        HyperLogLogTailCut,
        HyperLogLogTailCutPlus,
        KMinValues,
        LogLog,
        MultiResolutionBitmap,
        RefinedHyperLogLog,
        SuperLogLog,
    )

    classes = (
        Bitmap,
        FMSketch,
        HyperLogLog,
        HyperLogLogPlusPlus,
        HyperLogLogTailCut,
        HyperLogLogTailCutPlus,
        KMinValues,
        LogLog,
        MultiResolutionBitmap,
        RefinedHyperLogLog,
        SuperLogLog,
        SelfMorphingBitmap,
    )
    return {cls.__name__: cls for cls in classes}


class ShardPool(CardinalityEstimator):
    """K hash-partitioned estimators with an exactly-additive query.

    Parameters
    ----------
    factory:
        ``factory(shard_index) -> CardinalityEstimator``; called once
        per shard. For :meth:`merged` to be available every shard must
        be built with identical parameters (same class, size and seed).
    num_shards:
        Number of shards ``K`` (>= 1).
    seed:
        Seed of the partition hash (independent of estimator seeds).
    """

    name = "ShardPool"

    def __init__(
        self,
        factory: Callable[[int], CardinalityEstimator],
        num_shards: int,
        seed: int = 0,
    ) -> None:
        self.partitioner = Partitioner(num_shards, seed)
        self.shards: list[CardinalityEstimator] = [
            factory(index) for index in range(num_shards)
        ]
        for index, shard in enumerate(self.shards):
            if not isinstance(shard, CardinalityEstimator):
                raise TypeError(
                    f"factory returned {type(shard).__name__} for shard "
                    f"{index}; expected a CardinalityEstimator"
                )
        super().__init__()  # zeroes the routing counters via the setters

    @classmethod
    def of(
        cls,
        estimator: str,
        memory_bits: int,
        num_shards: int,
        design_cardinality: int = 1_000_000,
        seed: int = 0,
        backend: str = "thread",
        workers: int | None = None,
    ) -> "CardinalityEstimator":
        """Build a pool by estimator display name with the paper's sizing.

        The total ``memory_bits`` budget and the ``design_cardinality``
        are divided evenly across the ``num_shards`` shards (each shard
        sees ~1/K of the distinct items), and every shard shares the
        same estimator seed so that :meth:`merged` stays valid for
        mergeable types.

        ``backend`` selects the execution mode: ``"thread"`` (default)
        returns the plain in-process pool; ``"process"`` wraps it in a
        :class:`~repro.parallel.pool.ProcessShardPool` with ``workers``
        worker processes (default: one per shard, capped at 8). Both
        backends use the same partitioner and seeds, so their recorded
        state is bit-for-bit identical (contract-tested in
        ``tests/test_parallel.py``).
        """
        from repro.bench.runner import make_estimator

        if backend not in ("thread", "process"):
            raise ValueError(
                f"unknown backend {backend!r}; choose 'thread' or 'process'"
            )
        shard_bits = max(64, int(memory_bits) // int(num_shards))
        shard_design = max(1_000, int(design_cardinality) // int(num_shards))
        pool = cls(
            lambda index: make_estimator(
                estimator, shard_bits, shard_design, seed
            ),
            num_shards,
            seed=seed,
        )
        if backend == "process":
            from repro.parallel import ProcessShardPool

            return ProcessShardPool(
                pool, workers if workers else min(int(num_shards), 8)
            )
        return pool

    # ------------------------------------------------------------------
    # Instrumentation: pool counters aggregate routing + shard counters.
    # ------------------------------------------------------------------
    @property
    def hash_ops(self) -> int:
        """Routing hash ops plus every shard's own hash ops."""
        return self._route_hash_ops + sum(s.hash_ops for s in self.shards)

    @hash_ops.setter
    def hash_ops(self, value: int) -> None:
        self._route_hash_ops = int(value)

    @property
    def bits_accessed(self) -> int:
        """Aggregate bits-accessed counter across all shards."""
        return self._route_bits_accessed + sum(
            s.bits_accessed for s in self.shards
        )

    @bits_accessed.setter
    def bits_accessed(self, value: int) -> None:
        self._route_bits_accessed = int(value)

    def reset_counters(self) -> None:
        """Zero the routing counters and every shard's counters."""
        super().reset_counters()
        for shard in self.shards:
            shard.reset_counters()

    # ------------------------------------------------------------------
    # Recording: route, then delegate. Both paths bill one routing hash
    # per item (none when K == 1, where no routing hash is computed).
    # ------------------------------------------------------------------
    def _record_u64(self, value: int) -> None:
        if self.num_shards > 1:
            self._route_hash_ops += 1
        self.shards[self.partitioner.shard_of(value)]._record_u64(value)

    def plane_requests(self) -> tuple[PlaneRequest, ...]:
        """Routing hash plus every request shared by all shards.

        Requests unique to a subset of shards are left out: they are
        cheaper to compute at sub-plane width after partitioning than
        at full chunk width before it. ``ShardPool.of`` gives every
        shard the same estimator seed, so there the full request set is
        prefetched and the shards never hash at all.
        """
        requests: list[PlaneRequest] = []
        if self.num_shards > 1:
            requests.append(self.partitioner.plane_request())
        counts: dict[PlaneRequest, int] = {}
        for shard in self.shards:
            for request in dict.fromkeys(shard.plane_requests()):
                counts[request] = counts.get(request, 0) + 1
        requests.extend(
            request
            for request, count in counts.items()
            if count == self.num_shards and request not in requests
        )
        return tuple(requests)

    def _record_plane(self, plane: HashPlane) -> None:
        if self.num_shards == 1:
            self.shards[0]._record_plane(plane)
            return
        self._route_hash_ops += plane.size
        # Hash once at full vector width, then hand each shard a pure
        # gather of the arrays it will read.
        plane.prefetch(self.plane_requests())
        # analysis: allow(purity.loop) -- one iteration per shard (K),
        # each applying a vectorized sub-plane, never per item
        for shard, part in zip(
            self.shards, self.partitioner.split_plane(plane)
        ):
            if part.size:
                shard._record_plane(part)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self) -> float:
        """Sum of shard estimates — exact additivity over disjoint shards."""
        return float(sum(shard.query() for shard in self.shards))

    def shard_estimates(self) -> list[float]:
        """Per-shard estimates (diagnostics; sums to :meth:`query`)."""
        return [shard.query() for shard in self.shards]

    def memory_bits(self) -> int:
        """Total memory across shards (the partitioner itself stores none)."""
        return sum(shard.memory_bits() for shard in self.shards)

    @property
    def num_shards(self) -> int:
        """Number of shards K."""
        return self.partitioner.num_shards

    @property
    def seed(self) -> int:
        """Seed of the partition hash."""
        return self.partitioner.seed

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    def merge(self, other: CardinalityEstimator) -> None:
        """Shard-wise union with a pool over the same partition function.

        Valid only when the shard estimators are themselves mergeable:
        an item routes to the same shard index in both pools, so shard
        ``k`` of the merged pool is the sketch of the union of the two
        shard-``k`` sub-streams, and those unions remain disjoint across
        shards — additivity is preserved.
        """
        self._check_mergeable(other)
        assert isinstance(other, ShardPool)  # _check_mergeable guarantees it
        self._check_merge_params(other, "num_shards", "seed")
        for mine, theirs in zip(self.shards, other.shards):
            mine.merge(theirs)

    def merged(self) -> CardinalityEstimator:
        """Collapse all shards into one sketch of the whole stream.

        Requires every shard to be mergeable and built with identical
        parameters (the :meth:`of` constructor guarantees this). Useful
        for exporting a single compact sketch after sharded ingestion.
        """
        from repro.estimators.setops import clone

        collapsed = clone(self.shards[0])
        for shard in self.shards[1:]:
            collapsed.merge(shard)
        return collapsed

    def to_bytes(self) -> bytes:
        """Serialize the whole pool (versioned header + shard blobs)."""
        parts = [
            _HEADER.pack(_MAGIC, _VERSION, self.num_shards, self.seed)
        ]
        for shard in self.shards:
            blob = shard.to_bytes()
            class_name = type(shard).__name__.encode("ascii")
            parts.append(_SHARD_HEADER.pack(len(class_name), len(blob)))
            parts.append(class_name)
            parts.append(blob)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ShardPool":
        """Restore a pool serialized by :meth:`to_bytes`.

        Each shard blob fully encodes its own configuration, so no
        factory is needed; shard classes resolve through
        :func:`estimator_registry`. Framing is strict: a truncated
        shard header, class name or blob — and any trailing bytes
        after the last shard — raise ``ValueError``.
        """
        try:
            magic, version, num_shards, seed = _HEADER.unpack_from(data)
        except struct.error as error:
            raise ValueError("not a serialized ShardPool: too short") from error
        if magic != _MAGIC:
            raise ValueError("not a serialized ShardPool")
        if version != _VERSION:
            raise ValueError(f"unsupported ShardPool version {version}")
        registry = estimator_registry()
        shards: list[CardinalityEstimator] = []
        offset = _HEADER.size
        for __ in range(num_shards):
            try:
                name_len, blob_len = _SHARD_HEADER.unpack_from(data, offset)
            except struct.error as error:
                raise ValueError(
                    "corrupt ShardPool payload: truncated shard header"
                ) from error
            offset += _SHARD_HEADER.size
            name_bytes = data[offset:offset + name_len]
            if len(name_bytes) != name_len:
                raise ValueError(
                    "corrupt ShardPool payload: truncated shard class name"
                )
            class_name = name_bytes.decode("ascii")
            offset += name_len
            blob = data[offset:offset + blob_len]
            if len(blob) != blob_len:
                raise ValueError("corrupt ShardPool payload: truncated shard")
            offset += blob_len
            shard_cls = registry.get(class_name)
            if shard_cls is None:
                raise ValueError(f"unknown shard estimator {class_name!r}")
            shards.append(shard_cls.from_bytes(blob))
        if offset != len(data):
            raise ValueError(
                "corrupt ShardPool payload: trailing bytes after last shard"
            )
        iterator = iter(shards)
        return cls(lambda __: next(iterator), num_shards, seed=seed)

    def __repr__(self) -> str:
        kinds = {type(shard).__name__ for shard in self.shards}
        return (
            f"ShardPool(num_shards={self.num_shards}, "
            f"shards={'/'.join(sorted(kinds))}, "
            f"memory_bits={self.memory_bits()})"
        )
