"""Sharded concurrent streaming ingestion engine.

The substrate that scales the estimators beyond a single-threaded
driver loop (see ``docs/architecture.md``, "Layer 5"):

- :mod:`repro.engine.partition` — deterministic hash partitioning of
  the item space into ``K`` disjoint shards;
- :mod:`repro.engine.shards` — :class:`ShardPool`, one estimator per
  shard with an *exactly additive* query (disjoint shards make shard
  sums unbiased even for non-mergeable SMB);
- :mod:`repro.engine.pipeline` — :class:`IngestPipeline`, a
  bounded-queue producer/consumer pipeline with one worker thread per
  shard and backpressure;
- :mod:`repro.engine.checkpoint` — atomic on-disk snapshot/restore of
  pools and estimators (write-to-temp + rename, CRC-validated);
- :mod:`repro.engine.recovery` — :class:`CheckpointManager` and
  :class:`RetryPolicy`, generation-rotated crash recovery on top of
  the checkpoint layer (CRC'd manifest, torn-generation fallback,
  orphan sweep, bounded retries with deterministic jitter).

Quickstart::

    from repro.engine import ShardPool, IngestPipeline, checkpoint

    pool = ShardPool.of("SMB", memory_bits=20_000, num_shards=4)
    with IngestPipeline(pool) as pipe:
        pipe.submit(batch)          # backpressured, concurrent
        print(pipe.estimate())      # drain + additive shard-sum query
    checkpoint.save(pool, "pool.ckpt")
"""

from repro.engine import checkpoint
from repro.engine.partition import Partitioner
from repro.engine.pipeline import IngestPipeline
from repro.engine.recovery import (
    CheckpointManager,
    Generation,
    RecoveryError,
    RetryPolicy,
)
from repro.engine.shards import ShardPool, estimator_registry

__all__ = [
    "CheckpointManager",
    "Generation",
    "IngestPipeline",
    "Partitioner",
    "RecoveryError",
    "RetryPolicy",
    "ShardPool",
    "checkpoint",
    "estimator_registry",
]
