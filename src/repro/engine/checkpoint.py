"""Atomic on-disk snapshots of estimators and shard pools.

Checkpoint files wrap the estimators' own ``to_bytes`` serialization in
a small versioned container::

    magic "RPCK" | u16 version | u8 class-name length | class name
    | u32 CRC-32 of payload | u64 payload length | payload

and are written **atomically**: the bytes go to a temporary file in the
target directory, are flushed and fsynced, and the file is then renamed
over the destination with ``os.replace``. A crash mid-checkpoint leaves
the previous checkpoint intact; a torn or corrupted file is rejected at
load time by the length and CRC checks rather than deserialized into a
silently-wrong estimator.

:func:`save` / :func:`load` work for any serializable estimator class in
:func:`~repro.engine.shards.estimator_registry` (plus
:class:`~repro.engine.shards.ShardPool` itself, whose payload nests the
per-shard blobs). Restoring yields an estimator that continues ingesting
exactly as the uninterrupted original would — the stateful engine test
drives interleaved ingest/checkpoint/restore cycles to prove it.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib

from repro.estimators.base import CardinalityEstimator
from repro.engine.shards import ShardPool, estimator_registry

_HEADER = struct.Struct("<4sHB")  # magic, version, class-name length
_TRAILER = struct.Struct("<IQ")  # crc32, payload length
_MAGIC = b"RPCK"
_VERSION = 1


def _registry() -> dict[str, type]:
    """The estimator registry extended with the pool type itself."""
    registry = estimator_registry()
    registry[ShardPool.__name__] = ShardPool
    return registry


def save(estimator: CardinalityEstimator, path: str | os.PathLike) -> int:
    """Atomically write an estimator snapshot; returns bytes written.

    The estimator must support ``to_bytes`` and be restorable through
    :func:`load` (i.e. its class must appear in the registry).
    """
    class_name = type(estimator).__name__
    if class_name not in _registry():
        raise ValueError(
            f"{class_name} is not checkpointable (not in the estimator "
            "registry)"
        )
    payload = estimator.to_bytes()
    name_bytes = class_name.encode("ascii")
    blob = b"".join(
        (
            _HEADER.pack(_MAGIC, _VERSION, len(name_bytes)),
            name_bytes,
            _TRAILER.pack(zlib.crc32(payload), len(payload)),
            payload,
        )
    )
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=".checkpoint-", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return len(blob)


def load(path: str | os.PathLike) -> CardinalityEstimator:
    """Load, validate and restore a checkpoint written by :func:`save`.

    Raises ``ValueError`` for anything that is not a complete, intact
    checkpoint: wrong magic, unknown version or class, truncation, or a
    payload CRC mismatch.
    """
    with open(os.fspath(path), "rb") as handle:
        data = handle.read()
    if len(data) < _HEADER.size + _TRAILER.size:
        raise ValueError("not a checkpoint file: too short")
    magic, version, name_length = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError("not a checkpoint file: bad magic")
    if version != _VERSION:
        raise ValueError(f"unsupported checkpoint version {version}")
    offset = _HEADER.size
    class_name = data[offset:offset + name_length].decode("ascii")
    offset += name_length
    try:
        crc, payload_length = _TRAILER.unpack_from(data, offset)
    except struct.error as error:
        raise ValueError("corrupt checkpoint: truncated header") from error
    offset += _TRAILER.size
    payload = data[offset:offset + payload_length]
    if len(payload) != payload_length:
        raise ValueError("corrupt checkpoint: truncated payload")
    if zlib.crc32(payload) != crc:
        raise ValueError("corrupt checkpoint: payload CRC mismatch")
    cls = _registry().get(class_name)
    if cls is None:
        raise ValueError(f"unknown checkpoint class {class_name!r}")
    return cls.from_bytes(payload)
