"""Atomic on-disk snapshots of estimators and shard pools.

Checkpoint files wrap the estimators' own ``to_bytes`` serialization in
a small versioned container::

    magic "RPCK" | u16 version | u8 class-name length | class name
    | u32 CRC-32 of payload | u64 payload length | payload

and are written **atomically and durably**: the bytes go to a temporary
file in the target directory (re-chmodded from ``mkstemp``'s private
0600 to honor the process umask, like a plain ``open()`` would), are
flushed and fsynced, the file is then renamed over the destination with
``os.replace``, and finally the containing directory is fsynced so the
rename itself survives a crash (pass ``sync_directory=False`` to skip
that last step in tests). A crash mid-checkpoint leaves the previous
checkpoint intact; a crash *before* the rename can orphan a
``.checkpoint-*`` temp file, which
:class:`~repro.engine.recovery.CheckpointManager` sweeps at startup.
Both crash windows carry :mod:`repro.testing.faults` failpoints
(``checkpoint.pre-fsync``, ``checkpoint.post-replace``) so the
fault-injection suite can prove those guarantees.

Validation at load time is **strict**: a torn, corrupted, or padded
file is rejected rather than deserialized into a silently-wrong
estimator. Beyond the magic/version/CRC checks, the container enforces
exact framing — the class-name slice must be complete, and the file
must end exactly at ``offset + payload_length`` (trailing bytes after
the payload, e.g. from a concatenated or overwritten-in-place file,
raise ``ValueError`` even though the CRC over the payload prefix would
pass).

When observability is enabled (:mod:`repro.obs`), saves and loads
record byte counters and duration histograms
(``repro_checkpoint_{save,load}_{bytes_total,seconds}``).

:func:`save` / :func:`load` work for any serializable estimator class in
:func:`~repro.engine.shards.estimator_registry` (plus
:class:`~repro.engine.shards.ShardPool` itself, whose payload nests the
per-shard blobs). Restoring yields an estimator that continues ingesting
exactly as the uninterrupted original would — the stateful engine test
drives interleaved ingest/checkpoint/restore cycles to prove it.
"""

from __future__ import annotations

import os
import struct
import tempfile
import time
import zlib
from typing import Any, TypeVar, cast

from repro.estimators.base import CardinalityEstimator
from repro.engine.shards import ShardPool, estimator_registry
from repro.obs.metrics import get_registry
from repro.testing.faults import fire

#: Prefix of the temporary files :func:`save` writes before the atomic
#: rename. Recovery's orphan sweep keys on it
#: (:meth:`repro.engine.recovery.CheckpointManager.sweep_orphans`).
TEMP_PREFIX = ".checkpoint-"

_HEADER = struct.Struct("<4sHB")  # magic, version, class-name length
_TRAILER = struct.Struct("<IQ")  # crc32, payload length
_MAGIC = b"RPCK"
_VERSION = 1


#: Extra checkpointable classes registered by higher layers — see
#: :func:`register_checkpointable`.
_EXTRA_CHECKPOINTABLE: dict[str, type[Any]] = {}

_C = TypeVar("_C")


def register_checkpointable(cls: type[_C]) -> type[_C]:
    """Register a class for :func:`save`/:func:`load` round-trips.

    The class must implement ``to_bytes() -> bytes`` and the classmethod
    ``from_bytes(payload) -> cls`` with the same strict-framing
    discipline as the estimators. Layers above the engine use this to
    checkpoint their own aggregates — e.g. the serving layer's
    multi-tenant registry (:class:`repro.serve.tenants.TenantRegistry`)
    — through the exact same atomic container and
    :class:`~repro.engine.recovery.CheckpointManager` machinery.
    Registering the same class name twice replaces the entry (idempotent
    for re-imports). Usable as a class decorator.
    """
    _EXTRA_CHECKPOINTABLE[cls.__name__] = cls
    return cls


def _registry() -> dict[str, type[Any]]:
    """The estimator registry extended with the pool type itself."""
    registry: dict[str, type[Any]] = dict(estimator_registry())
    registry[ShardPool.__name__] = ShardPool
    registry.update(_EXTRA_CHECKPOINTABLE)
    return registry


def _current_umask() -> int:
    """The process umask, read without changing it observably.

    POSIX offers no read-only accessor: the mask is read by setting it
    and immediately restoring it. The set/restore pair is not atomic
    with respect to other threads calling ``os.umask`` concurrently —
    nothing in this library does, and the window is two syscalls wide.
    """
    mask = os.umask(0)
    os.umask(mask)
    return mask


def _fsync_directory(directory: str) -> None:
    """Fsync a directory so a rename into it is crash-durable.

    Best-effort and guarded: platforms without ``O_DIRECTORY`` (or
    whose filesystems refuse to open/fsync directories, e.g. Windows)
    are silently skipped — the rename is still atomic there, just not
    guaranteed durable across power loss.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        descriptor = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


def save(
    estimator: CardinalityEstimator,
    path: str | os.PathLike[str],
    sync_directory: bool = True,
) -> int:
    """Atomically write an estimator snapshot; returns bytes written.

    The estimator must support ``to_bytes`` and be restorable through
    :func:`load` (i.e. its class must appear in the registry). After
    the temp file is fsynced and renamed into place, the containing
    directory is fsynced as well so the rename survives a crash; pass
    ``sync_directory=False`` to skip that (tests, throwaway dirs).
    """
    obs = get_registry()
    began = time.perf_counter() if obs.enabled else 0.0
    class_name = type(estimator).__name__
    if class_name not in _registry():
        raise ValueError(
            f"{class_name} is not checkpointable (not in the estimator "
            "registry)"
        )
    payload = estimator.to_bytes()
    name_bytes = class_name.encode("ascii")
    blob = b"".join(
        (
            _HEADER.pack(_MAGIC, _VERSION, len(name_bytes)),
            name_bytes,
            _TRAILER.pack(zlib.crc32(payload), len(payload)),
            payload,
        )
    )
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=TEMP_PREFIX, dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            # mkstemp creates the file 0600 regardless of umask (it is
            # private scratch space); the *final* checkpoint must carry
            # the permissions a plain open() would have produced, so
            # widen to 0666 minus the process umask before the rename
            # publishes the file.
            if hasattr(os, "fchmod"):
                os.fchmod(handle.fileno(), 0o666 & ~_current_umask())
            handle.write(blob)
            handle.flush()
            fire("checkpoint.pre-fsync")
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        fire("checkpoint.post-replace")
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    if sync_directory:
        _fsync_directory(directory)
    if obs.enabled:
        obs.counter(
            "repro_checkpoint_save_bytes_total",
            "Checkpoint bytes written by save()",
        ).inc(len(blob))
        obs.histogram(
            "repro_checkpoint_save_seconds",
            "Wall time of one checkpoint save()",
        ).observe(time.perf_counter() - began)
    return len(blob)


def load(path: str | os.PathLike[str]) -> CardinalityEstimator:
    """Load, validate and restore a checkpoint written by :func:`save`.

    Raises ``ValueError`` for anything that is not a complete, intact
    checkpoint: wrong magic, unknown version or class, truncation, a
    payload CRC mismatch, or trailing bytes after the payload (the file
    must end exactly where the declared payload does).
    """
    obs = get_registry()
    began = time.perf_counter() if obs.enabled else 0.0
    with open(os.fspath(path), "rb") as handle:
        data = handle.read()
    if len(data) < _HEADER.size + _TRAILER.size:
        raise ValueError("not a checkpoint file: too short")
    magic, version, name_length = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError("not a checkpoint file: bad magic")
    if version != _VERSION:
        raise ValueError(f"unsupported checkpoint version {version}")
    offset = _HEADER.size
    name_bytes = data[offset:offset + name_length]
    if len(name_bytes) != name_length:
        raise ValueError("corrupt checkpoint: truncated class name")
    class_name = name_bytes.decode("ascii")
    offset += name_length
    try:
        crc, payload_length = _TRAILER.unpack_from(data, offset)
    except struct.error as error:
        raise ValueError("corrupt checkpoint: truncated header") from error
    offset += _TRAILER.size
    if len(data) != offset + payload_length:
        # Strict framing: reject truncation AND trailing garbage — a
        # concatenated or overwritten-in-place file would pass the CRC
        # over the payload prefix.
        kind = "truncated" if len(data) < offset + payload_length else "trailing bytes after"
        raise ValueError(f"corrupt checkpoint: {kind} payload")
    payload = data[offset:]
    if zlib.crc32(payload) != crc:
        raise ValueError("corrupt checkpoint: payload CRC mismatch")
    cls = _registry().get(class_name)
    if cls is None:
        raise ValueError(f"unknown checkpoint class {class_name!r}")
    # Registered extras (register_checkpointable) satisfy the same
    # to_bytes/from_bytes surface without subclassing the base.
    estimator = cast(CardinalityEstimator, cls.from_bytes(payload))
    if obs.enabled:
        obs.counter(
            "repro_checkpoint_load_bytes_total",
            "Checkpoint bytes read by load()",
        ).inc(len(data))
        obs.histogram(
            "repro_checkpoint_load_seconds",
            "Wall time of one checkpoint load()",
        ).observe(time.perf_counter() - began)
    return estimator
