"""Crash recovery: generation-rotated checkpoints with retries.

:mod:`repro.engine.checkpoint` makes a *single* snapshot atomic; this
module makes a *sequence* of snapshots survivable:

- :class:`CheckpointManager` owns one checkpoint directory and writes
  generation-numbered files (``ckpt-00000042.rpck``) plus a CRC'd JSON
  ``MANIFEST.json`` naming every retained generation and its metadata.
  Saves rotate: after each new generation the oldest ones beyond
  ``keep`` are pruned. Loads fall back: :meth:`CheckpointManager.load_latest`
  walks generations newest-first — across the union of the manifest and
  a directory scan, so a crash *between* publishing the generation file
  and republishing the manifest still recovers the newest state — and
  returns the first one :func:`repro.engine.checkpoint.load` accepts. A
  torn or truncated latest generation therefore degrades to the
  previous good one instead of an unrecoverable error.
- :class:`RetryPolicy` wraps checkpoint I/O in bounded retries with
  exponential backoff and *deterministic* jitter (seeded, replayable —
  no global RNG). Errors are classified transient vs fatal:
  interrupted/temporarily-unavailable ``OSError`` values retry,
  corruption and programming errors abort immediately.
- A startup (and on-demand) **orphan sweep** removes stale
  ``.checkpoint-*`` temp files left by crashes between ``mkstemp`` and
  ``os.replace``. A grace period keyed on file mtime protects the live
  temp files of concurrent savers in the same directory.

Every crash window is marked with a :mod:`repro.testing.faults`
failpoint (``checkpoint.pre-fsync``, ``checkpoint.post-replace``,
``recovery.pre-manifest``), and the fault-injection suite
(``tests/test_recovery.py``, ``tests/test_crash_recovery.py``) proves
that each armed window either leaves the previous generation loadable
or is healed by manifest/scan fallback.

When :mod:`repro.obs` is enabled, recovery emits the
:class:`~repro.obs.instrument.RecoveryMetrics` catalog: save/retry/
fallback/orphan/prune counters, a retained-generations gauge and
save/load duration histograms. See ``docs/recovery.md`` for the full
failure model.
"""

from __future__ import annotations

import errno
import json
import os
import re
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.engine import checkpoint
from repro.estimators.base import CardinalityEstimator
from repro.obs.metrics import get_registry
from repro.testing.faults import fire

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.instrument import RecoveryMetrics

__all__ = [
    "CheckpointManager",
    "Generation",
    "RecoveryError",
    "RetryPolicy",
    "TRANSIENT_ERRNOS",
]

#: ``OSError`` errnos worth retrying: the condition is expected to clear
#: on its own. Everything else (ENOSPC, EACCES, EROFS, EIO, ...) aborts
#: immediately — retrying cannot help and only delays the failure.
TRANSIENT_ERRNOS: frozenset[int] = frozenset(
    {
        errno.EAGAIN,
        errno.EWOULDBLOCK,
        errno.EINTR,
        errno.EBUSY,
        errno.ETIMEDOUT,
    }
)

_GENERATION_RE = re.compile(r"^ckpt-(\d{8})\.rpck$")
_MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_VERSION = 1


class RecoveryError(RuntimeError):
    """No generation in the checkpoint directory could be restored."""


class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (>= 1); transient failures
        beyond this re-raise.
    base_delay / multiplier / max_delay:
        Backoff schedule in seconds: attempt ``k`` (0-based) waits
        ``min(max_delay, base_delay * multiplier**k)`` before retrying.
    jitter:
        Fractional jitter amplitude in ``[0, 1)``: each delay is scaled
        by ``1 + jitter * u`` with ``u`` a *deterministic* value in
        ``[-1, 1]`` derived from ``seed`` and the attempt index — two
        runs with the same seed replay identical delays (no global RNG,
        per the repo's determinism rules).
    seed:
        Jitter seed; give concurrent savers distinct seeds to de-sync
        their retry storms.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.005,
        multiplier: float = 2.0,
        max_delay: float = 0.5,
        jitter: float = 0.25,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._sleep = sleep

    def is_transient(self, error: BaseException) -> bool:
        """Classify an error: True = retry, False = abort immediately.

        :class:`~repro.testing.faults.InjectedFault` carries its own
        ``transient`` flag; an ``OSError`` is transient iff its errno is
        in :data:`TRANSIENT_ERRNOS`; everything else (corruption
        ``ValueError``, type errors, ...) is fatal.
        """
        transient = getattr(error, "transient", None)
        if transient is not None:
            return bool(transient)
        if isinstance(error, OSError):
            return error.errno in TRANSIENT_ERRNOS
        return False

    def delay(self, attempt: int) -> float:
        """The deterministic backoff delay after 0-based ``attempt``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** attempt
        )
        if not self.jitter:
            return raw
        digest = zlib.crc32(f"{self.seed}:{attempt}".encode("ascii"))
        unit = digest / 0xFFFFFFFF * 2.0 - 1.0  # deterministic in [-1, 1]
        return raw * (1.0 + self.jitter * unit)

    def call(
        self,
        operation: Callable[[], object],
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> object:
        """Run ``operation`` under this policy; returns its result.

        Fatal errors propagate immediately; transient ones are retried
        (after :meth:`delay`) up to ``max_attempts`` total attempts,
        then the last error propagates. ``on_retry(attempt, error)`` is
        called before each sleep — the manager uses it to count retries
        into :mod:`repro.obs`.
        """
        attempt = 0
        while True:
            try:
                return operation()
            except BaseException as error:
                if not self.is_transient(error):
                    raise
                attempt += 1
                if attempt >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                self._sleep(self.delay(attempt - 1))


@dataclass(frozen=True)
class Generation:
    """One retained checkpoint generation, as recovery sees it.

    ``meta`` is the caller-supplied metadata recorded at save time (the
    pipeline stores its safe-point record counts there, which is what
    makes exact resume possible); generations recovered from a
    directory scan after a manifest-publication crash carry ``meta={}``
    and ``manifested=False``.
    """

    generation: int
    path: str
    size: int
    meta: dict[str, Any] = field(default_factory=dict)
    manifested: bool = True


class CheckpointManager:
    """Rotating, self-healing checkpoints over one directory.

    Parameters
    ----------
    directory:
        The checkpoint directory (created if missing). One manager —
        or one engine process — per directory is the supported regime;
        the temp-file scheme keeps even misconfigured concurrent savers
        from corrupting each other, but rotation bookkeeping is only
        synchronized in-process (an internal lock makes one manager
        thread-safe).
    keep:
        Retained generations (>= 1); older ones are pruned after each
        successful save.
    retry:
        :class:`RetryPolicy` applied to checkpoint save I/O (a default
        policy if omitted).
    orphan_grace:
        Age in seconds a ``.checkpoint-*`` temp file must reach before
        the sweep deletes it — protects temp files a concurrent saver
        is still writing. The startup sweep runs automatically.
    sync_directory:
        Forwarded to :func:`repro.engine.checkpoint.save`; disable only
        in tests.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        keep: int = 3,
        retry: RetryPolicy | None = None,
        orphan_grace: float = 60.0,
        sync_directory: bool = True,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        if orphan_grace < 0:
            raise ValueError(f"orphan_grace must be >= 0, got {orphan_grace}")
        self.directory = os.fspath(directory)
        self.keep = int(keep)
        self.retry = retry if retry is not None else RetryPolicy()
        self.orphan_grace = float(orphan_grace)
        self.sync_directory = bool(sync_directory)
        self._lock = threading.Lock()
        registry = get_registry()
        self._obs: "RecoveryMetrics | None" = None
        if registry.enabled:
            from repro.obs.instrument import RecoveryMetrics

            self._obs = RecoveryMetrics(registry)
        os.makedirs(self.directory, exist_ok=True)
        self.sweep_orphans()

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def save(
        self,
        estimator: CardinalityEstimator,
        meta: dict[str, Any] | None = None,
    ) -> Generation:
        """Write the next generation, publish it, rotate old ones.

        The generation file is written first (atomically, under the
        retry policy), then the manifest is republished to include it,
        then generations beyond ``keep`` are pruned. A crash after the
        file is durable but before the manifest lands is healed at load
        time by the directory-scan fallback (the ``recovery.pre-manifest``
        failpoint sits exactly in that window).
        """
        obs = self._obs
        began = time.perf_counter() if obs is not None else 0.0
        meta = dict(meta or {})
        with self._lock:
            entries = self._merged_generations()
            number = (entries[-1].generation + 1) if entries else 1
            path = os.path.join(self.directory, _generation_name(number))
            self.retry.call(
                lambda: checkpoint.save(
                    estimator, path, sync_directory=self.sync_directory
                ),
                on_retry=self._count_retry,
            )
            fire("recovery.pre-manifest")
            generation = Generation(
                generation=number,
                path=path,
                size=os.path.getsize(path),
                meta=meta,
            )
            retained, pruned = self._rotate(entries + [generation])
            self._write_manifest(retained)
            for stale in pruned:
                try:
                    os.unlink(stale.path)
                except OSError:
                    pass
        if obs is not None:
            obs.saves.inc()
            obs.pruned.inc(len(pruned))
            obs.generations.set(len(retained))
            obs.save_seconds.observe(time.perf_counter() - began)
        return generation

    def _count_retry(self, attempt: int, error: BaseException) -> None:
        """Retry hook: surface retry volume in the metrics registry."""
        if self._obs is not None:
            self._obs.retries.inc()

    def _rotate(
        self, entries: list[Generation]
    ) -> tuple[list[Generation], list[Generation]]:
        """Split generations into (retained newest ``keep``, pruned)."""
        entries = sorted(entries, key=lambda g: g.generation)
        if len(entries) <= self.keep:
            return entries, []
        return entries[-self.keep:], entries[: -self.keep]

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_latest(self) -> tuple[CardinalityEstimator, Generation]:
        """Restore the newest generation that validates; with fallback.

        Candidates are the union of manifest entries and on-disk
        ``ckpt-*.rpck`` files, newest generation first. Each candidate
        is validated by :func:`repro.engine.checkpoint.load` (magic,
        CRC, strict framing); a torn or truncated one is skipped — and
        counted as a fallback — rather than trusted. Raises
        :class:`RecoveryError` when nothing restores.
        """
        obs = self._obs
        began = time.perf_counter() if obs is not None else 0.0
        # Same lock as save(): a load racing a concurrent save must not
        # scan the directory mid-rotation and chase a just-pruned file.
        with self._lock:
            candidates = list(reversed(self._merged_generations()))
        failures: list[str] = []
        for candidate in candidates:
            try:
                estimator = checkpoint.load(candidate.path)
            except (OSError, ValueError) as error:
                failures.append(f"{os.path.basename(candidate.path)}: {error}")
                if obs is not None:
                    obs.fallbacks.inc()
                continue
            if obs is not None:
                obs.load_seconds.observe(time.perf_counter() - began)
            return estimator, candidate
        detail = "; ".join(failures) if failures else "no generations found"
        raise RecoveryError(
            f"no loadable checkpoint generation in {self.directory!r} "
            f"({detail})"
        )

    def generations(self) -> list[Generation]:
        """Every known generation, oldest first (manifest ∪ disk scan)."""
        with self._lock:
            return self._merged_generations()

    # ------------------------------------------------------------------
    # Hygiene
    # ------------------------------------------------------------------
    def sweep_orphans(self, grace: float | None = None) -> int:
        """Delete stale ``.checkpoint-*`` temp files; returns the count.

        A crash between ``mkstemp`` and ``os.replace`` leaks its temp
        file forever — nothing else ever references it. Only files older
        than ``grace`` seconds (default: the manager's ``orphan_grace``)
        are removed, so a *live* concurrent saver's temp file survives
        the sweep. Runs automatically at manager construction.
        """
        grace = self.orphan_grace if grace is None else float(grace)
        # Wall clock is inherently part of the staleness contract here
        # (mtime-based aging); it never feeds an estimate or a metric
        # value.  # analysis: allow(determinism.wallclock)
        now = time.time()
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if not name.startswith(checkpoint.TEMP_PREFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                age = now - os.path.getmtime(path)
                if age >= grace:
                    os.unlink(path)
                    removed += 1
            except OSError:
                continue  # vanished or unreadable — not ours to force
        if removed and self._obs is not None:
            self._obs.orphans_removed.inc(removed)
        return removed

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        """Absolute path of the CRC'd manifest file."""
        return os.path.join(self.directory, _MANIFEST_NAME)

    def _merged_generations(self) -> list[Generation]:
        """Manifest entries ∪ on-disk generation files, oldest first.

        The manifest is authoritative for metadata; the disk scan heals
        the two stale-manifest cases (a generation published but not
        yet manifested, and a manifest entry whose file was pruned by a
        crashed rotation). A torn manifest degrades to scan-only.
        """
        manifest = {g.generation: g for g in self._read_manifest()}
        merged: dict[int, Generation] = {}
        try:
            names = os.listdir(self.directory)
        except OSError:
            names = []
        for name in names:
            match = _GENERATION_RE.match(name)
            if not match:
                continue
            number = int(match.group(1))
            path = os.path.join(self.directory, name)
            known = manifest.get(number)
            if known is not None:
                merged[number] = known
            else:
                try:
                    size = os.path.getsize(path)
                except OSError:
                    continue
                merged[number] = Generation(
                    generation=number,
                    path=path,
                    size=size,
                    meta={},
                    manifested=False,
                )
        return [merged[number] for number in sorted(merged)]

    def _read_manifest(self) -> list[Generation]:
        """Parse and CRC-verify the manifest; [] when absent or torn."""
        try:
            with open(self.manifest_path, "rb") as handle:
                document = json.loads(handle.read().decode("utf-8"))
        except (OSError, ValueError):
            return []
        if not isinstance(document, dict):
            return []
        body = document.get("body")
        crc = document.get("crc")
        if body is None or crc != zlib.crc32(_canonical_json(body)):
            return []  # torn manifest: fall back to the directory scan
        if body.get("version") != _MANIFEST_VERSION:
            return []
        out: list[Generation] = []
        for entry in body.get("generations", ()):
            try:
                out.append(
                    Generation(
                        generation=int(entry["generation"]),
                        path=os.path.join(self.directory, entry["file"]),
                        size=int(entry["bytes"]),
                        meta=dict(entry.get("meta", {})),
                    )
                )
            except (KeyError, TypeError, ValueError):
                return []  # structurally corrupt: distrust the whole file
        return out

    def _write_manifest(self, entries: list[Generation]) -> None:
        """Atomically republish the manifest for ``entries``."""
        body = {
            "version": _MANIFEST_VERSION,
            "generations": [
                {
                    "generation": g.generation,
                    "file": os.path.basename(g.path),
                    "bytes": g.size,
                    "meta": g.meta,
                }
                for g in sorted(entries, key=lambda g: g.generation)
            ],
        }
        document = {"crc": zlib.crc32(_canonical_json(body)), "body": body}
        blob = json.dumps(document, sort_keys=True).encode("utf-8")
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".manifest-", dir=self.directory
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.manifest_path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise


def _generation_name(number: int) -> str:
    """The on-disk filename of generation ``number``."""
    if not 0 < number <= 99_999_999:
        raise ValueError(f"generation number out of range: {number}")
    return f"ckpt-{number:08d}.rpck"


def _canonical_json(value: object) -> bytes:
    """Canonical JSON bytes — the manifest CRC is computed over these."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
