"""Bounded-queue producer/consumer ingestion over a shard pool.

:class:`IngestPipeline` turns a :class:`~repro.engine.shards.ShardPool`
into a concurrent streaming sink:

- the **submitting thread** canonicalizes each incoming batch, slices it
  into chunks of ``chunk_size`` items, builds one shared
  :class:`~repro.kernels.HashPlane` per chunk, prefetches the hash
  arrays the pool's shards will read, and enqueues gathered per-shard
  sub-planes — so a chunk is hashed exactly once, in the producer;
- **one worker thread per shard** drains its own bounded FIFO queue into
  its own estimator. Exclusive shard ownership means no locks on the hot
  path, and FIFO ordering preserves within-shard arrival order — so a
  drained pipeline holds *bit-for-bit* the same state as synchronous
  ``pool.record_many`` over the same stream (asserted by the stateful
  engine test). Sub-planes own gathered copies of their arrays, so
  handing them across the thread boundary is safe.

**Backpressure.** Queues are bounded (``queue_depth`` sub-batches per
shard); :meth:`IngestPipeline.submit` blocks when a shard's consumer
falls behind, so an unbounded producer cannot exhaust memory.

**Shutdown.** :meth:`drain` blocks until every enqueued sub-batch has
been applied (safe point for :meth:`estimate` or a checkpoint);
:meth:`close` drains, stops the workers, and re-raises the first worker
error, if any. The pipeline is a context manager::

    with IngestPipeline(pool) as pipe:
        for batch in batches:
            pipe.submit(batch)
    print(pool.query())

Throughput note: CPython threads interleave on the GIL, but NumPy
releases it inside the vectorized kernels that dominate the batch path,
so partitioning and per-shard recording genuinely overlap.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable

import numpy as np

from repro.engine.shards import ShardPool
from repro.hashing import canonical_u64_array
from repro.kernels import HashPlane

#: Default chunk size of the submit path — same order as SMB's dedup
#: window (``repro.core.smb.BATCH_CHUNK``), large enough to amortize
#: vectorized hashing, small enough to keep queues responsive.
DEFAULT_CHUNK = 8192

_STOP = None  # queue sentinel


class IngestPipeline:
    """Concurrent, backpressured ingestion into a shard pool.

    Parameters
    ----------
    pool:
        The shard pool to ingest into. The pipeline takes exclusive
        write ownership of the pool until :meth:`close`.
    chunk_size:
        Submitted batches are partitioned in chunks of this many items.
    queue_depth:
        Bound of each per-shard queue, in sub-batches; the submit path
        blocks (backpressure) when a queue is full.
    """

    def __init__(
        self,
        pool: ShardPool,
        chunk_size: int = DEFAULT_CHUNK,
        queue_depth: int = 8,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.pool = pool
        self.chunk_size = int(chunk_size)
        self.records_submitted = 0
        self._queues: list[queue.Queue] = [
            queue.Queue(maxsize=queue_depth) for __ in pool.shards
        ]
        self._errors: list[BaseException] = []
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._work,
                args=(shard_index,),
                name=f"ingest-shard-{shard_index}",
                daemon=True,
            )
            for shard_index in range(pool.num_shards)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _work(self, shard_index: int) -> None:
        """Drain one shard's queue into its estimator (worker thread)."""
        shard = self.pool.shards[shard_index]
        inbox = self._queues[shard_index]
        while True:
            batch = inbox.get()
            try:
                if batch is _STOP:
                    return
                if not self._errors:
                    shard._record_plane(batch)
            except BaseException as error:  # pragma: no cover - defensive
                self._errors.append(error)
            finally:
                inbox.task_done()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, items: Iterable[object] | np.ndarray) -> int:
        """Partition a batch and enqueue it; returns the item count.

        Blocks while any target shard queue is full (backpressure).
        Raises ``RuntimeError`` if the pipeline is closed or a worker
        has failed.
        """
        if self._closed:
            raise RuntimeError("cannot submit to a closed pipeline")
        self._raise_pending()
        values = canonical_u64_array(items)
        if self.pool.num_shards > 1:
            # Same routing-hash accounting as ShardPool._record_plane
            # (the pipeline partitions directly, bypassing that method).
            self.pool._route_hash_ops += int(values.size)
        # Hash in the producer, at full chunk width: NumPy releases the
        # GIL inside the vectorized hash kernels, so prefetching here
        # overlaps with the workers applying earlier sub-planes.
        requests = self.pool.plane_requests()
        for start in range(0, values.size, self.chunk_size):
            plane = HashPlane(values[start:start + self.chunk_size])
            plane.prefetch(requests)
            for shard_index, part in enumerate(
                self.pool.partitioner.split_plane(plane)
            ):
                if part.size:
                    self._queues[shard_index].put(part)
        self.records_submitted += int(values.size)
        return int(values.size)

    def drain(self) -> None:
        """Block until every enqueued sub-batch has been applied.

        After ``drain`` returns (and before further ``submit`` calls)
        the pool state is identical to a synchronous ingest of all
        submitted items — a safe point to query or checkpoint.
        """
        for inbox in self._queues:
            inbox.join()
        self._raise_pending()

    def estimate(self) -> float:
        """Drain, then return the pool's cardinality estimate."""
        self.drain()
        return self.pool.query()

    def close(self) -> None:
        """Drain, stop the workers, and surface any worker error."""
        if self._closed:
            return
        self._closed = True
        for inbox in self._queues:
            inbox.join()
        for inbox in self._queues:
            inbox.put(_STOP)
        for worker in self._workers:
            worker.join()
        self._raise_pending()

    def _raise_pending(self) -> None:
        if self._errors:
            raise RuntimeError(
                "ingest worker failed"
            ) from self._errors[0]

    def __enter__(self) -> "IngestPipeline":
        """Enter: the pipeline is usable immediately after construction."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Exit: close the pipeline (drains unless already failing)."""
        self.close()

    def __repr__(self) -> str:
        return (
            f"IngestPipeline(shards={self.pool.num_shards}, "
            f"chunk_size={self.chunk_size}, "
            f"submitted={self.records_submitted}, "
            f"closed={self._closed})"
        )
