"""Bounded-queue producer/consumer ingestion over a shard pool.

:class:`IngestPipeline` turns a :class:`~repro.engine.shards.ShardPool`
into a concurrent streaming sink:

- the **submitting thread** canonicalizes each incoming batch, slices it
  into chunks of ``chunk_size`` items, builds one shared
  :class:`~repro.kernels.HashPlane` per chunk, prefetches the hash
  arrays the pool's shards will read, and enqueues gathered per-shard
  sub-planes — so a chunk is hashed exactly once, in the producer;
- **one worker thread per shard** drains its own bounded FIFO queue into
  its own estimator. Exclusive shard ownership means no locks on the hot
  path, and FIFO ordering preserves within-shard arrival order — so a
  drained pipeline holds *bit-for-bit* the same state as synchronous
  ``pool.record_many`` over the same stream (asserted by the stateful
  engine test). Sub-planes own gathered copies of their arrays, so
  handing them across the thread boundary is safe.

**Backpressure.** Queues are bounded (``queue_depth`` sub-batches per
shard); :meth:`IngestPipeline.submit` blocks when a shard's consumer
falls behind, so an unbounded producer cannot exhaust memory.

**Multiple producers.** :meth:`submit` may be called from any number of
threads concurrently — in particular from an executor pool driven by an
``asyncio`` event loop (``loop.run_in_executor``), which is how the
serving layer (:mod:`repro.serve`) feeds the pipeline. All counters are
lock-guarded, and :meth:`checkpoint_now` *quiesces* the producers (new
submits park at a gate, in-flight submits are waited out) before
draining, so a checkpoint can never capture a half-enqueued chunk from
a concurrent producer. Within-shard arrival order across producers is
whatever order their enqueues interleave in — estimator state is
order-insensitive for a fixed key *set*, and per-producer FIFO still
holds, which is what the serving layer's per-connection semantics need.

**Shutdown.** :meth:`drain` blocks until every enqueued sub-batch has
been applied (safe point for :meth:`estimate` or a checkpoint);
:meth:`close` drains, stops the workers, and re-raises the first worker
error, if any. Lifecycle transitions are lock-guarded: concurrent
``close`` calls elect exactly one finisher, a submit racing a close
either completes before the stop sentinels go out or raises
``RuntimeError`` — never enqueues behind a sentinel. The pipeline is a
context manager::

    with IngestPipeline(pool) as pipe:
        for batch in batches:
            pipe.submit(batch)
    print(pool.query())

**Failure accounting.** Once a worker has failed, the remaining workers
drop every further sub-batch instead of applying it; ``submit`` stops
enqueueing at the next chunk boundary and raises. The counters stay
honest through this: ``records_submitted`` counts only records of
chunks that were actually enqueued, ``records_dropped`` counts records
the workers discarded (including the partially-applied failing batch,
whose shard state is suspect), so ``records_submitted -
records_dropped`` is the number of records fully applied to the pool.

**Observability.** When the process-wide :mod:`repro.obs` registry is
enabled, the pipeline emits submitted/dropped counters, per-shard queue
depth gauges, and backpressure-wait / batch-apply latency histograms,
and attaches per-shard SMB adaptivity gauges via the pool observer
(exposed as :attr:`IngestPipeline.pool_observer`). All metric work
happens per chunk or per sub-batch — never per item — and with the
default :class:`~repro.obs.metrics.NullRegistry` the instrumented
branches collapse to a single ``is None`` check.

**Durability.** Constructed with a
:class:`~repro.engine.recovery.CheckpointManager` and
``checkpoint_every=N``, the submit path checkpoints the pool at a
drained safe point every ``N`` enqueued records (see
:meth:`IngestPipeline.checkpoint_now` and ``docs/recovery.md``); the
crash windows on both sides of the queue hand-off carry
:mod:`repro.testing.faults` failpoints (``pipeline.queue-put``,
``pipeline.worker-apply``) for the fault-injection suite.

Throughput note: CPython threads interleave on the GIL, but NumPy
releases it inside the vectorized kernels that dominate the batch path,
so partitioning and per-shard recording genuinely overlap.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np

from repro.engine.shards import ShardPool
from repro.hashing import canonical_u64_array
from repro.kernels import HashPlane
from repro.obs.metrics import get_registry
from repro.testing.faults import fire

if TYPE_CHECKING:  # import cycle guard: recovery imports checkpoint
    from types import TracebackType

    from repro.engine.recovery import CheckpointManager, Generation
    from repro.obs.instrument import (
        ParallelMetrics,
        PipelineMetrics,
        PoolObserver,
    )

#: Default chunk size of the submit path — same order as SMB's dedup
#: window (``repro.core.smb.BATCH_CHUNK``), large enough to amortize
#: vectorized hashing, small enough to keep queues responsive.
DEFAULT_CHUNK = 8192

_STOP = None  # queue sentinel


class IngestPipeline:
    """Concurrent, backpressured ingestion into a shard pool.

    Parameters
    ----------
    pool:
        The shard pool to ingest into. The pipeline takes exclusive
        write ownership of the pool until :meth:`close`.
    chunk_size:
        Submitted batches are partitioned in chunks of this many items.
    queue_depth:
        Bound of each per-shard queue, in sub-batches; the submit path
        blocks (backpressure) when a queue is full.
    checkpoint_manager / checkpoint_every:
        Optional crash-durability wiring: with a
        :class:`~repro.engine.recovery.CheckpointManager` and a
        positive ``checkpoint_every`` (records), the submit path drains
        to a safe point and writes a checkpoint generation every time
        that many records have been enqueued since the last one. Set
        :attr:`checkpoint_meta` to enrich the generation metadata (the
        engine CLI records the absolute stream offset there for exact
        resume).
    workers:
        0 (default) runs the threaded backend described above. A
        positive count switches to the **process backend**: chunks are
        routed to a :class:`~repro.parallel.pool.ProcessShardPool` with
        that many worker processes instead of per-shard threads, so
        hashing and recording scale past one core. The recorded state
        is bit-for-bit identical either way; checkpoints are composed
        from worker state at the same safe points and restore on either
        backend. A crashed worker surfaces as
        :class:`~repro.parallel.pool.WorkerCrashedError` from the next
        submit/drain (the process backend never drops-and-continues).
    """

    def __init__(
        self,
        pool: ShardPool,
        chunk_size: int = DEFAULT_CHUNK,
        queue_depth: int = 8,
        checkpoint_manager: "CheckpointManager | None" = None,
        checkpoint_every: int = 0,
        workers: int = 0,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every and checkpoint_manager is None:
            raise ValueError(
                "checkpoint_every requires a checkpoint_manager"
            )
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.pool = pool
        self.chunk_size = int(chunk_size)
        self.workers = int(workers)
        self.records_submitted = 0  # guarded-by: _count_lock
        self._records_applied = 0  # guarded-by: _count_lock
        self.records_dropped = 0  # guarded-by: _count_lock
        self.checkpoint_manager = checkpoint_manager
        self.checkpoint_every = int(checkpoint_every)
        #: Optional ``() -> dict`` hook merged into every periodic
        #: checkpoint's metadata (e.g. an absolute stream offset).
        self.checkpoint_meta: Callable[[], dict[str, Any]] | None = None
        self._records_since_checkpoint = 0  # guarded-by: _count_lock
        # One lock for every counter that more than one thread writes:
        # submitted / applied / dropped / since-checkpoint / the pool's
        # routing-hash ops. Producers may be an executor pool, so the
        # unsynchronized += of a single-producer design would lose
        # updates. Cost is one uncontended acquire per *chunk* or
        # sub-batch, never per item.
        self._count_lock = threading.Lock()
        if self.workers:
            from repro.parallel import ProcessShardPool

            self._backend: "ProcessShardPool | None" = ProcessShardPool(
                pool, self.workers
            )
        else:
            self._backend = None
        # Each queue carries gathered per-shard HashPlane sub-batches
        # plus the _STOP sentinel, hence Any.
        self._queues: list[queue.Queue[Any]] = [] if self._backend else [
            queue.Queue(maxsize=queue_depth) for __ in pool.shards
        ]
        self._errors: list[BaseException] = []
        # Lifecycle state: _closed flips exactly once, under _lifecycle;
        # submits register in _active_submits so close() can wait for
        # them instead of racing them to the queue sentinels. _paused
        # counts outstanding quiesce requests (checkpoint_now): while it
        # is non-zero, new submits park at the gate instead of starting,
        # so a checkpoint drains a stable, chunk-aligned state even with
        # concurrent producers.
        self._lifecycle = threading.Condition()
        self._active_submits = 0  # guarded-by: _lifecycle
        self._paused = 0  # guarded-by: _lifecycle
        # Serializes checkpoint writers; the periodic trigger inside
        # submit try-acquires it so two producers crossing the threshold
        # together cannot deadlock waiting for each other to quiesce.
        self._checkpoint_mutex = threading.Lock()
        self._close_complete = threading.Event()
        self._closed = False  # guarded-by: _lifecycle
        registry = get_registry()
        self._obs: "PipelineMetrics | None" = None
        #: Per-shard estimate/skew gauges (None when obs disabled);
        #: call ``pool_observer.update()`` at safe points.
        self.pool_observer: "PoolObserver | None" = None
        self._parallel_obs: "ParallelMetrics | None" = None
        if registry.enabled:
            from repro.obs.instrument import (
                ParallelMetrics,
                PipelineMetrics,
                PoolObserver,
            )

            self._obs = PipelineMetrics(registry, pool.num_shards)
            self.pool_observer = PoolObserver(registry, pool)
            if self._backend is not None:
                self._parallel_obs = ParallelMetrics(
                    registry, self._backend.num_workers
                )
        self._workers = [] if self._backend else [
            threading.Thread(
                target=self._work,
                args=(shard_index,),
                name=f"ingest-shard-{shard_index}",
                daemon=True,
            )
            for shard_index in range(pool.num_shards)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _work(self, shard_index: int) -> None:
        """Drain one shard's queue into its estimator (worker thread).

        After any worker has failed, every worker *drops* further
        sub-batches (counted in :attr:`records_dropped`) instead of
        applying them — the pool state is already suspect and the
        submitting thread is about to raise.
        """
        shard = self.pool.shards[shard_index]
        inbox = self._queues[shard_index]
        obs = self._obs
        while True:
            batch = inbox.get()
            try:
                if batch is _STOP:
                    return
                if self._errors:
                    self._count_dropped(batch.size)
                elif obs is None:
                    fire("pipeline.worker-apply")
                    shard._record_plane(batch)
                    self._count_applied(batch.size)
                else:
                    began = time.perf_counter()
                    try:
                        fire("pipeline.worker-apply")
                        shard._record_plane(batch)
                        self._count_applied(batch.size)
                    finally:
                        obs.apply_latency[shard_index].observe(
                            time.perf_counter() - began
                        )
                        obs.queue_depth[shard_index].set(inbox.qsize())
            except BaseException as error:  # pragma: no cover - defensive
                self._errors.append(error)
                # The failing batch may be partially applied; its shard
                # state is suspect, so bill the whole batch as dropped.
                self._count_dropped(batch.size)
            finally:
                inbox.task_done()

    def _count_dropped(self, count: int) -> None:
        with self._count_lock:
            self.records_dropped += int(count)
        if self._obs is not None:
            self._obs.dropped.inc(count)
            self._obs.batches_dropped.inc()

    def _count_applied(self, count: int) -> None:
        with self._count_lock:
            self._records_applied += int(count)

    @property
    def records_applied(self) -> int:
        """Records fully applied to the pool.

        Thread backend: the worker-maintained counter. Process backend:
        a live read of the workers' shared-memory counters (no IPC)."""
        if self._backend is not None:
            return self._backend.records_applied
        with self._count_lock:
            return self._records_applied

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, items: Iterable[object] | np.ndarray) -> int:
        """Partition a batch and enqueue it; returns the enqueued count.

        Blocks while any target shard queue is full (backpressure).
        Raises ``RuntimeError`` if the pipeline is closed or a worker
        has failed — the failure check runs before *every* chunk, so a
        mid-stream worker death stops the producer at the next chunk
        boundary. Counters (:attr:`records_submitted`, the pool's
        routing hash ops) only ever cover chunks whose every sub-plane
        was actually enqueued — both are billed *after* the enqueue
        loop, so a failure mid-chunk (partitioner error, injected
        ``pipeline.queue-put`` fault) cannot skew routing-ops
        accounting relative to the record counters.

        Submit-vs-close is deterministic: a submit that starts after
        :meth:`close` was called raises immediately; a submit already
        in flight is waited for by ``close`` (nothing is ever enqueued
        behind the stop sentinel). While a :meth:`checkpoint_now` is
        quiescing, new submits park at the entry gate and resume once
        the generation is written — callers observe extra latency, not
        an error. Safe to call from many threads at once (an
        ``asyncio`` ``run_in_executor`` pool included).
        """
        with self._lifecycle:
            while self._paused and not self._closed:
                self._lifecycle.wait()
            if self._closed:
                raise RuntimeError("cannot submit to a closed pipeline")
            self._active_submits += 1
        try:
            return self._submit_registered(items)
        finally:
            with self._lifecycle:
                self._active_submits -= 1
                self._lifecycle.notify_all()

    def _submit_registered(self, items: Iterable[object] | np.ndarray) -> int:
        """The body of :meth:`submit`, after lifecycle registration."""
        self._raise_pending()
        values = canonical_u64_array(items)
        if self._backend is not None:
            return self._submit_process(values)
        # Hash in the producer, at full chunk width: NumPy releases the
        # GIL inside the vectorized hash kernels, so prefetching here
        # overlaps with the workers applying earlier sub-planes.
        requests = self.pool.plane_requests()
        obs = self._obs
        enqueued = 0
        for start in range(0, values.size, self.chunk_size):
            self._raise_pending()  # fast-fail between chunks
            plane = HashPlane(values[start:start + self.chunk_size])
            plane.prefetch(requests)
            for shard_index, part in enumerate(
                self.pool.partitioner.split_plane(plane)
            ):
                if not part.size:
                    continue
                fire("pipeline.queue-put")
                if obs is None:
                    self._queues[shard_index].put(part)
                else:
                    self._put_observed(shard_index, part, obs)
            # Billed only after the whole chunk is enqueued — the
            # routing hashes were *used* (split_plane), but accounting
            # must stay consistent with records_submitted, which a
            # mid-chunk failure must not advance either. Same
            # routing-hash accounting as ShardPool._record_plane (the
            # pipeline partitions directly, bypassing that method).
            checkpoint_due = False
            with self._count_lock:
                if self.pool.num_shards > 1:
                    self.pool._route_hash_ops += plane.size
                self.records_submitted += plane.size
                if self.checkpoint_every:
                    self._records_since_checkpoint += plane.size
                    checkpoint_due = (
                        self._records_since_checkpoint
                        >= self.checkpoint_every
                    )
            enqueued += plane.size
            if obs is not None:
                obs.submitted.inc(plane.size)
            if checkpoint_due:
                # Try-acquire: when several producers cross the
                # threshold together exactly one writes the generation
                # (it quiesces the others); the losers skip and the
                # still-high since-checkpoint counter re-triggers on
                # the winner's next chunk if the threshold is crossed
                # again.
                if self._checkpoint_mutex.acquire(blocking=False):
                    try:
                        self._checkpoint_quiesced(None, active_allowance=1)
                    finally:
                        self._checkpoint_mutex.release()
        return enqueued

    def _submit_process(self, values: np.ndarray) -> int:
        """Process-backend body of :meth:`submit`: route chunks to the
        worker rings. The backend bills the pool's routing-hash counter
        itself; record counters and periodic checkpoints behave exactly
        as on the threaded path."""
        backend = self._backend
        assert backend is not None
        obs = self._obs
        enqueued = 0
        for start in range(0, values.size, self.chunk_size):
            chunk = values[start:start + self.chunk_size]
            fire("pipeline.queue-put")
            backend.submit_values(chunk)
            checkpoint_due = False
            with self._count_lock:
                self.records_submitted += chunk.size
                if self.checkpoint_every:
                    self._records_since_checkpoint += chunk.size
                    checkpoint_due = (
                        self._records_since_checkpoint
                        >= self.checkpoint_every
                    )
            enqueued += chunk.size
            if obs is not None:
                obs.submitted.inc(chunk.size)
            if checkpoint_due:
                if self._checkpoint_mutex.acquire(blocking=False):
                    try:
                        self._checkpoint_quiesced(None, active_allowance=1)
                    finally:
                        self._checkpoint_mutex.release()
        return enqueued

    def checkpoint_now(
        self, meta: dict[str, Any] | None = None
    ) -> "Generation":
        """Drain to a safe point and write one checkpoint generation.

        Requires a ``checkpoint_manager``. Producers are quiesced
        first (new submits park at the entry gate, in-flight submits
        are waited out) and the pool is then drained, so the generation
        captures a state exactly equivalent to a synchronous ingest of
        every record submitted so far — never a half-enqueued chunk
        from a concurrent producer. The metadata records
        :attr:`records_submitted` (plus anything the
        :attr:`checkpoint_meta` hook or the ``meta`` argument adds), so
        a resumed run knows the exact stream offset to replay from.
        Concurrent callers serialize; each writes its own generation.
        """
        with self._checkpoint_mutex:
            return self._checkpoint_quiesced(meta, active_allowance=0)

    def _checkpoint_quiesced(
        self, meta: dict[str, Any] | None, active_allowance: int
    ) -> "Generation":
        """Quiesce producers, drain, save one generation, resume.

        ``active_allowance`` is the number of in-flight submits allowed
        to remain registered while draining: 0 for an external caller,
        1 when called *from inside* a submit (the caller itself). The
        caller must hold :attr:`_checkpoint_mutex`.
        """
        if self.checkpoint_manager is None:
            raise RuntimeError(
                "pipeline has no checkpoint_manager to checkpoint into"
            )
        with self._lifecycle:
            self._paused += 1
            while self._active_submits > active_allowance:
                self._lifecycle.wait()
        try:
            self.drain()
            self.sync_pool()
            merged: dict[str, Any] = {}
            if self.checkpoint_meta is not None:
                merged.update(self.checkpoint_meta())
            if meta:
                merged.update(meta)
            with self._count_lock:
                merged.setdefault("records_submitted", self.records_submitted)
            generation = self.checkpoint_manager.save(self.pool, meta=merged)
            with self._count_lock:
                self._records_since_checkpoint = 0
            return generation
        finally:
            with self._lifecycle:
                self._paused -= 1
                self._lifecycle.notify_all()

    def _put_observed(
        self, shard_index: int, part: HashPlane, obs: "PipelineMetrics"
    ) -> None:
        """Enqueue one sub-batch, timing any backpressure stall."""
        inbox = self._queues[shard_index]
        try:
            inbox.put_nowait(part)
        except queue.Full:
            began = time.perf_counter()
            inbox.put(part)
            obs.backpressure.observe(time.perf_counter() - began)
        obs.queue_depth[shard_index].set(inbox.qsize())

    def drain(self) -> None:
        """Block until every enqueued sub-batch has been applied.

        After ``drain`` returns (and before further ``submit`` calls)
        the estimator state is identical to a synchronous ingest of all
        submitted items — a safe point to query or checkpoint. On the
        process backend this is a flush barrier across the worker
        rings; the wrapped pool object itself stays stale until
        :meth:`sync_pool`.
        """
        if self._backend is not None:
            self._backend.drain()
            if self._parallel_obs is not None:
                self._parallel_obs.update(self._backend)
            return
        for inbox in self._queues:
            inbox.join()
        if self.pool_observer is not None:
            self.pool_observer.update()
        self._raise_pending()

    def sync_pool(self) -> None:
        """Make ``self.pool`` reflect all applied records.

        A no-op on the threaded backend (workers mutate the pool's
        shards in place); on the process backend this folds worker
        shard state back into the pool — required before serializing
        or checkpointing it. Callers should :meth:`drain` first.
        """
        if self._backend is not None:
            self._backend.sync()
            if self.pool_observer is not None:
                self.pool_observer.update()

    def query_live(self) -> float:
        """The current estimate without draining (the serving layer's
        O(1) ESTIMATE read): applied records only, never blocks on
        in-flight batches. Thread backend reads the pool; process
        backend reads the workers' shared-memory estimate headers."""
        if self._backend is not None:
            return self._backend.query()
        return self.pool.query()

    def estimate(self) -> float:
        """Drain, then return the pool's cardinality estimate."""
        self.drain()
        if self._backend is not None:
            return self._backend.query()
        return self.pool.query()

    def close(self) -> None:
        """Drain, stop the workers, and surface any worker error.

        Thread-safe and idempotent *under concurrency*: the ``_closed``
        flip happens under the lifecycle lock, so exactly one caller
        becomes the finisher (joins queues, enqueues the stop sentinels
        once, joins the workers); every other concurrent or later call
        waits for that shutdown to complete and returns. The finisher
        also waits out in-flight :meth:`submit` calls before sending
        the sentinels, so no sub-batch is ever enqueued behind a
        sentinel — the submit-vs-close race resolves deterministically
        (late submits raise, in-flight submits finish first).
        """
        with self._lifecycle:
            finisher = not self._closed
            self._closed = True
            # Wake submits parked at the pause gate so they observe the
            # close and raise instead of sleeping until the in-progress
            # checkpoint (if any) notifies.
            self._lifecycle.notify_all()
            if finisher:
                while self._active_submits:
                    self._lifecycle.wait()
        if not finisher:
            self._close_complete.wait()
            return
        try:
            if self._backend is not None:
                self._shutdown_backend()
            else:
                for inbox in self._queues:
                    inbox.join()
                for inbox in self._queues:
                    inbox.put(_STOP)
                for worker in self._workers:
                    worker.join()
                if self.pool_observer is not None:
                    self.pool_observer.update()
        finally:
            self._close_complete.set()
        self._raise_pending()

    def _shutdown_backend(self) -> None:
        """Process-backend shutdown: fold state back, stop the workers.

        A crashed worker is recorded (surfaced by ``_raise_pending`` at
        the end of :meth:`close`) and the remaining workers still shut
        down cleanly — close never hangs on a dead process."""
        from repro.parallel import WorkerCrashedError

        backend = self._backend
        assert backend is not None
        try:
            backend.drain()
            backend.sync()
            if self.pool_observer is not None:
                self.pool_observer.update()
            if self._parallel_obs is not None:
                self._parallel_obs.update(backend)
        except WorkerCrashedError as error:
            self._errors.append(error)
        finally:
            backend.close()

    def _raise_pending(self) -> None:
        if self._errors:
            raise RuntimeError(
                "ingest worker failed"
            ) from self._errors[0]

    def __enter__(self) -> "IngestPipeline":
        """Enter: the pipeline is usable immediately after construction."""
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: "TracebackType | None",
    ) -> None:
        """Exit: close the pipeline (always drains — on a worker
        failure the remaining queue entries drain as counted drops)."""
        self.close()

    def __repr__(self) -> str:
        # analysis: allow(guards.unguarded-access) -- diagnostic repr:
        # lock-free reads of GIL-atomic ints/bools. A momentarily stale
        # value is fine here, and taking locks in repr would let a
        # debugger contend with the ingest path.
        submitted = self.records_submitted
        # analysis: allow(guards.unguarded-access) -- same repr waiver
        dropped = self.records_dropped
        # analysis: allow(guards.unguarded-access) -- same repr waiver
        closed = self._closed
        return (
            f"IngestPipeline(shards={self.pool.num_shards}, "
            f"chunk_size={self.chunk_size}, "
            f"submitted={submitted}, dropped={dropped}, closed={closed})"
        )
